#include "src/storage/file_backend.h"

#include <cstdio>
#include <filesystem>

#include "src/common/logging.h"

namespace hcache {

namespace fs = std::filesystem;

FileBackend::FileBackend(std::vector<std::string> device_dirs, int64_t chunk_bytes)
    : StorageBackend(chunk_bytes), device_dirs_(std::move(device_dirs)) {
  CHECK(!device_dirs_.empty());
  for (const auto& dir : device_dirs_) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    CHECK(!ec) << "cannot create device dir " << dir << ": " << ec.message();
  }
}

int FileBackend::DeviceOf(const ChunkKey& key) const {
  return static_cast<int>(key.chunk_index % static_cast<int64_t>(device_dirs_.size()));
}

std::string FileBackend::ContextDir(int device, int64_t context_id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ctx%lld", static_cast<long long>(context_id));
  return device_dirs_[static_cast<size_t>(device)] + "/" + name;
}

std::string FileBackend::PathFor(const ChunkKey& key) const {
  char name[64];
  std::snprintf(name, sizeof(name), "L%lld_C%lld.bin", static_cast<long long>(key.layer),
                static_cast<long long>(key.chunk_index));
  return ContextDir(DeviceOf(key), key.context_id) + "/" + name;
}

bool FileBackend::EnsureContextDir(int device, int64_t context_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (context_dirs_.count({context_id, device}) != 0) {
      return true;
    }
  }
  std::error_code ec;
  fs::create_directories(ContextDir(device, context_id), ec);
  if (ec) {
    HCACHE_LOG_ERROR << "cannot create context dir for ctx " << context_id << ": "
                     << ec.message();
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  context_dirs_.insert({context_id, device});
  return true;
}

bool FileBackend::WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, chunk_bytes());
  if (!EnsureContextDir(DeviceOf(key), key.context_id)) {
    return false;
  }
  const std::string path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    HCACHE_LOG_ERROR << "open failed: " << path;
    return false;
  }
  const size_t written = std::fwrite(data, 1, static_cast<size_t>(bytes), f);
  const bool ok = written == static_cast<size_t>(bytes) && std::fclose(f) == 0;
  if (!ok) {
    HCACHE_LOG_ERROR << "short write: " << path;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& indexed = index_[key];
  bytes_stored_ += bytes - indexed;
  indexed = bytes;
  ++total_writes_;
  return true;
}

int64_t FileBackend::ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const {
  int64_t size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      return -1;
    }
    size = it->second;
  }
  if (size > buf_bytes) {
    return -1;
  }
  const std::string path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return -1;
  }
  const size_t got = std::fread(buf, 1, static_cast<size_t>(size), f);
  std::fclose(f);
  if (got != static_cast<size_t>(size)) {
    return -1;
  }
  // Count only successful reads, so stats stay comparable across backends.
  std::lock_guard<std::mutex> lock(mu_);
  ++total_reads_;
  read_bytes_ += size;
  return size;
}

bool FileBackend::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

int64_t FileBackend::ChunkSize(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  return it == index_.end() ? -1 : it->second;
}

void FileBackend::DeleteContext(int64_t context_id) {
  std::vector<int> devices;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = index_.lower_bound(ChunkKey{context_id, 0, 0});
         it != index_.end() && it->first.context_id == context_id;) {
      bytes_stored_ -= it->second;
      it = index_.erase(it);
    }
    for (auto it = context_dirs_.lower_bound({context_id, 0});
         it != context_dirs_.end() && it->first == context_id;) {
      devices.push_back(it->second);
      it = context_dirs_.erase(it);
    }
  }
  // Unlink the per-context directory on each device — removing the chunks AND the
  // now-empty directory, so long serving runs don't accumulate thousands of them.
  for (const int device : devices) {
    std::error_code ec;
    fs::remove_all(ContextDir(device, context_id), ec);
  }
}

StorageStats FileBackend::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StorageStats s;
  s.chunks_stored = static_cast<int64_t>(index_.size());
  s.bytes_stored = bytes_stored_;
  s.total_writes = total_writes_;
  s.total_reads = total_reads_;
  s.cold_hits = total_reads_;  // every read is served by the file tier
  s.cold_hit_bytes = read_bytes_;
  return s;
}

}  // namespace hcache
