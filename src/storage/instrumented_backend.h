// Instrumentation wrapper for storage backends: forwards every operation to an
// inner backend while optionally injecting per-op latency (a stand-in for real
// SSD/NVMe service time in concurrency tests and the cluster bench), scheduled
// write failures (the eviction-failure-path conservation tests), and caller hooks
// that run *inside* the inner IO (the "no lock held across cold-tier IO" probe
// re-enters the tier from another thread through these).
//
// Thread-safe: counters are atomics and hooks are installed before the backend is
// shared. Latency is injected OUTSIDE the inner backend's locks (before the
// forwarded call), so the wrapper adds service time, not lock hold time.
#ifndef HCACHE_SRC_STORAGE_INSTRUMENTED_BACKEND_H_
#define HCACHE_SRC_STORAGE_INSTRUMENTED_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/storage/storage_backend.h"

namespace hcache {

class InstrumentedBackend : public StorageBackend {
 public:
  // `inner` must outlive the wrapper and defines chunk_bytes.
  explicit InstrumentedBackend(StorageBackend* inner);

  // Every ReadChunk/WriteChunk sleeps this long before forwarding (0 = off).
  void set_io_latency_micros(int64_t micros) { io_latency_micros_ = micros; }

  // Deterministic per-op latency *distribution*: each injected sleep becomes
  // mean ± uniform jitter in [-jitter_micros, +jitter_micros], clamped at 0. The
  // sequence of sampled latencies is a pure function of (seed, draw index) — give
  // each simulated node its own seed and a heterogeneous fleet's service times
  // replay exactly. Jitter affects only wall-clock sleep time, never stored bytes,
  // so simulated results stay byte-identical whatever the seed. 0 = no jitter.
  void set_io_latency_jitter(int64_t jitter_micros, uint64_t seed) {
    io_jitter_micros_ = jitter_micros;
    jitter_seed_ = seed;
  }

  // The pure sampler behind the jitter (exposed for tests): latency of draw `draw`
  // for a node seeded `seed`. Uniform over [mean-jitter, mean+jitter], floored at 0.
  static int64_t JitteredLatencyMicros(int64_t mean_micros, int64_t jitter_micros,
                                       uint64_t seed, uint64_t draw);

  // The next `n` WriteChunk calls fail (return false) without touching `inner`.
  void FailNextWrites(int64_t n) { fail_writes_ = n; }

  // --- Corruption fault injection (the durability suite's chaos monkey) ---
  //
  // Both operate on the chunk *at rest* in the inner backend: read the stored
  // bytes back unverified, mutate, rewrite. They model media faults (a flipped
  // cell, a lost tail), not API misuse — the write path itself stays correct.
  // Return false if the chunk does not exist (or the mutated rewrite fails).

  // Flips one bit of the stored chunk. `bit_offset` indexes from byte 0 of the
  // stored object (header included) and is clamped into range, so e.g. 0 hits the
  // magic and `8 * stored_size - 1` hits the last payload byte.
  bool CorruptChunk(const ChunkKey& key, int64_t bit_offset);

  // Replaces the stored chunk with its first `new_bytes` bytes (a torn write /
  // lost tail). `new_bytes` must be in [1, stored_size); shrinking to 0 is a
  // delete, not a truncation — use DeleteChunk for that.
  bool TruncateChunk(const ChunkKey& key, int64_t new_bytes);

  // Hooks run while the forwarded operation is conceptually in flight (after the
  // injected latency, before the inner call). Install before sharing the backend.
  void set_write_hook(std::function<void(const ChunkKey&)> hook) {
    write_hook_ = std::move(hook);
  }
  void set_read_hook(std::function<void(const ChunkKey&)> hook) {
    read_hook_ = std::move(hook);
  }

  int64_t injected_write_failures() const { return injected_write_failures_.load(); }

  // Batch submissions observed (each ReadChunks/WriteChunks call counts once, however
  // many requests it carries) — the conformance tests assert callers actually batch.
  int64_t read_batches() const { return read_batches_.load(); }
  int64_t write_batches() const { return write_batches_.load(); }

  bool WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) override;
  int64_t ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const override;
  // Latency is injected ONCE per batch — a batched submission pays one device round
  // trip, which is exactly the effect batching exists to model — then the per-request
  // hooks run and the whole batch forwards to the inner backend's batched entry
  // point. Write-failure injection stays per-request (decrement-and-test), and an
  // injected failure never reaches `inner`.
  void ReadChunks(std::span<ChunkReadRequest> requests,
                  const BatchCompletion& done = {}) const override;
  bool WriteChunks(std::span<ChunkWriteRequest> requests,
                   const BatchCompletion& done = {}) override;
  bool HasChunk(const ChunkKey& key) const override;
  int64_t ChunkSize(const ChunkKey& key) const override;
  void DeleteContext(int64_t context_id) override;
  std::vector<std::pair<ChunkKey, int64_t>> ListChunks() const override {
    return inner_->ListChunks();
  }
  int64_t ReadChunkUnverified(const ChunkKey& key, void* buf,
                              int64_t buf_bytes) const override {
    return inner_->ReadChunkUnverified(key, buf, buf_bytes);
  }
  bool DeleteChunk(const ChunkKey& key) override { return inner_->DeleteChunk(key); }
  StorageStats Stats() const override;
  std::string Name() const override { return "instrumented(" + inner_->Name() + ")"; }
  void Quiesce() override { inner_->Quiesce(); }

  StorageBackend* inner() const { return inner_; }

 private:
  void InjectLatency() const;

  StorageBackend* inner_;
  std::atomic<int64_t> io_latency_micros_{0};
  std::atomic<int64_t> io_jitter_micros_{0};
  std::atomic<uint64_t> jitter_seed_{0};
  mutable std::atomic<uint64_t> jitter_draws_{0};
  std::atomic<int64_t> fail_writes_{0};
  mutable std::atomic<int64_t> injected_write_failures_{0};
  mutable std::atomic<int64_t> read_batches_{0};
  std::atomic<int64_t> write_batches_{0};
  std::function<void(const ChunkKey&)> write_hook_;
  std::function<void(const ChunkKey&)> read_hook_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_INSTRUMENTED_BACKEND_H_
