#include "src/storage/placement.h"

#include <algorithm>

#include "src/common/logging.h"

namespace hcache {
namespace {

// splitmix64 finalizer: full-avalanche 64-bit mixing, stable everywhere.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t VnodePoint(int node, int vnode) {
  return Mix64(Mix64(static_cast<uint64_t>(static_cast<uint32_t>(node)) + 1) ^
               (static_cast<uint64_t>(static_cast<uint32_t>(vnode)) * 0xd6e8feb86659fd93ull));
}

}  // namespace

uint64_t PlacementTable::HashKey(const ChunkKey& key) {
  uint64_t h = Mix64(static_cast<uint64_t>(key.context_id));
  h = Mix64(h ^ static_cast<uint64_t>(key.layer));
  return Mix64(h ^ static_cast<uint64_t>(key.chunk_index));
}

PlacementTable::PlacementTable(std::vector<int> node_ids, int vnodes_per_node)
    : node_ids_(std::move(node_ids)), vnodes_per_node_(vnodes_per_node) {
  CHECK(!node_ids_.empty());
  CHECK(vnodes_per_node_ > 0);
  std::sort(node_ids_.begin(), node_ids_.end());
  node_ids_.erase(std::unique(node_ids_.begin(), node_ids_.end()), node_ids_.end());
  ring_.reserve(node_ids_.size() * static_cast<size_t>(vnodes_per_node_));
  for (const int node : node_ids_) {
    for (int v = 0; v < vnodes_per_node_; ++v) {
      ring_.push_back(VirtualNode{VnodePoint(node, v), node});
    }
  }
  // Point collisions are astronomically unlikely; break any by node id so the
  // ring order stays deterministic regardless of construction order.
  std::sort(ring_.begin(), ring_.end(), [](const VirtualNode& a, const VirtualNode& b) {
    return a.point != b.point ? a.point < b.point : a.node < b.node;
  });
}

std::vector<int> PlacementTable::WalkOrder(const ChunkKey& key) const {
  const uint64_t point = HashKey(key);
  // First vnode at or after the key's point (wrapping).
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const VirtualNode& vn, uint64_t p) { return vn.point < p; });
  std::vector<int> order;
  order.reserve(node_ids_.size());
  std::vector<bool> seen(node_ids_.size(), false);
  for (size_t step = 0; step < ring_.size() && order.size() < node_ids_.size(); ++step) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    const int node = it->node;
    // node_ids_ is sorted: index by binary search.
    const size_t idx = static_cast<size_t>(
        std::lower_bound(node_ids_.begin(), node_ids_.end(), node) - node_ids_.begin());
    if (!seen[idx]) {
      seen[idx] = true;
      order.push_back(node);
    }
    ++it;
  }
  return order;
}

std::vector<int> PlacementTable::ReplicasFor(const ChunkKey& key, int r) const {
  std::vector<int> order = WalkOrder(key);
  if (static_cast<int>(order.size()) > r) {
    order.resize(static_cast<size_t>(r));
  }
  return order;
}

bool PlacementTable::IsHome(const ChunkKey& key, int node, int r) const {
  const std::vector<int> replicas = ReplicasFor(key, r);
  return std::find(replicas.begin(), replicas.end(), node) != replicas.end();
}

bool PlacementTable::HasNode(int node) const {
  return std::binary_search(node_ids_.begin(), node_ids_.end(), node);
}

PlacementTable PlacementTable::Without(int node) const {
  std::vector<int> ids;
  ids.reserve(node_ids_.size());
  for (const int id : node_ids_) {
    if (id != node) {
      ids.push_back(id);
    }
  }
  return PlacementTable(std::move(ids), vnodes_per_node_);
}

PlacementTable PlacementTable::With(int node) const {
  std::vector<int> ids = node_ids_;
  ids.push_back(node);
  return PlacementTable(std::move(ids), vnodes_per_node_);
}

}  // namespace hcache
