// Chunk integrity verification: the single checkpoint every read path funnels
// stored bytes through before they are allowed to decode into model state.
//
// The paper's premise — context state outlives the GPU in a storage tier — only
// holds if that tier can be *trusted*: at fleet scale bit rot, torn writes, and
// misdirected IO are routine, and a flipped bit in a chunk would otherwise decode
// into silently wrong KV. VerifyChunkBytes classifies a stored chunk:
//
//   kOkVerified   — a v2 chunk whose payload CRC32C matches its header. The bytes
//                   are what the writer sealed.
//   kOkUnverified — bytes that carry no checksum: a v1 or legacy headerless chunk,
//                   or an opaque blob that never claimed the chunk format (the
//                   serving plane's descriptor chunks). Readable, not attestable.
//   kCorrupt      — bytes that CLAIM the chunk format (magic present) but fail it:
//                   payload CRC mismatch, header CRC mismatch, or a size that
//                   contradicts the header (truncation). Backends surface this as
//                   kChunkCorrupt — never as decoded data.
#ifndef HCACHE_SRC_STORAGE_INTEGRITY_H_
#define HCACHE_SRC_STORAGE_INTEGRITY_H_

#include <cstdint>

namespace hcache {

enum class ChunkVerdict { kOkVerified = 0, kOkUnverified = 1, kCorrupt = 2 };

const char* ChunkVerdictName(ChunkVerdict verdict);

// Classifies `bytes` stored bytes. When `checked_bytes` is non-null it receives the
// number of payload bytes actually CRC-checked (> 0 only for kOkVerified) — the
// figure StorageStats::crc_checked_bytes accumulates.
ChunkVerdict VerifyChunkBytes(const void* data, int64_t bytes,
                              int64_t* checked_bytes = nullptr);

// VerifyChunkBytes fused with the delivery copy: classifies `data` and copies all
// `bytes` to `dst` in the same pass (the crc32c_copy kernel checksums the payload
// while it moves, so verification costs no extra memory sweep). On kCorrupt the
// contents of `dst` are unspecified — the caller must not deliver them. `dst` must
// hold `bytes` and must not overlap `data`.
ChunkVerdict VerifyAndCopyChunk(const void* data, int64_t bytes, void* dst,
                                int64_t* checked_bytes = nullptr);

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_INTEGRITY_H_
