#include "src/storage/hidden_saver.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

namespace hcache {

HiddenStateWriter::HiddenStateWriter(StorageBackend* store, ThreadPool* flush_pool,
                                     const ModelConfig& cfg, int64_t context_id,
                                     int64_t chunk_tokens, ChunkCodec codec)
    : store_(store),
      flush_pool_(flush_pool),
      cfg_(cfg),
      context_id_(context_id),
      chunk_tokens_(chunk_tokens),
      codec_(codec),
      row_stride_(CodecRowBytes(codec, cfg.hidden_dim)),
      staging_bytes_(EncodedChunkBytes(codec, chunk_tokens, cfg.hidden_dim)),
      layers_(static_cast<size_t>(cfg.num_layers)) {
  CHECK(store != nullptr);
  CHECK_GT(chunk_tokens_, 0);
  CHECK_LE(staging_bytes_, store_->chunk_bytes())
      << "chunk store sized too small for " << cfg_.name << " under codec "
      << ChunkCodecName(codec_);
  for (auto& lb : layers_) {
    lb.staging.resize(static_cast<size_t>(staging_bytes_));
  }
  payload_pool_.reserve(16);
}

HiddenStateWriter::~HiddenStateWriter() { Seal(); }

std::shared_ptr<std::vector<uint8_t>> HiddenStateWriter::AcquirePayload() {
  {
    std::lock_guard<std::mutex> lock(payload_mu_);
    if (!payload_pool_.empty()) {
      auto buf = std::move(payload_pool_.back());
      payload_pool_.pop_back();
      return buf;
    }
    ++payload_allocations_;
  }
  return std::make_shared<std::vector<uint8_t>>(static_cast<size_t>(staging_bytes_));
}

void HiddenStateWriter::ReleasePayload(std::shared_ptr<std::vector<uint8_t>> buf) {
  std::lock_guard<std::mutex> lock(payload_mu_);
  payload_pool_.push_back(std::move(buf));
}

int64_t HiddenStateWriter::payload_buffer_allocations() const {
  std::lock_guard<std::mutex> lock(payload_mu_);
  return payload_allocations_;
}

int64_t HiddenStateWriter::encoded_bytes_written() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return encoded_bytes_written_;
}

int64_t HiddenStateWriter::logical_bytes_written() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return logical_bytes_written_;
}

void HiddenStateWriter::OnLayerInput(int64_t layer, const Tensor& hidden,
                                     const int32_t* positions, int64_t n) {
  CHECK_GE(layer, 0);
  CHECK_LT(layer, cfg_.num_layers);
  CHECK_EQ(hidden.dim(1), cfg_.hidden_dim);
  LayerBuffer& lb = layers_[static_cast<size_t>(layer)];
  const int64_t cols = cfg_.hidden_dim;
  int64_t i = 0;
  while (i < n) {
    const int64_t take = std::min(chunk_tokens_ - lb.fill_tokens, n - i);
    for (int64_t j = 0; j < take; ++j) {
      CHECK_EQ(static_cast<int64_t>(positions[i + j]), lb.tokens_seen + j)
          << "hidden states must arrive append-only";
    }
    // Stage 1: snapshot the rows into host staging, encoding in the same pass — the
    // chunk leaves the compute thread already in its on-storage format.
    EncodeRowsInto(codec_, hidden.row(i), cols, take, cols,
                   lb.staging.data() + sizeof(ChunkHeader) + lb.fill_tokens * row_stride_);
    lb.fill_tokens += take;
    lb.tokens_seen += take;
    lb.dirty = true;
    i += take;
    if (lb.fill_tokens == chunk_tokens_) {
      FlushChunk(layer, lb);
    }
  }
}

void HiddenStateWriter::FlushChunk(int64_t layer, LayerBuffer& lb) {
  // Stage 2: hand the encoded chunk to the flush pool (or write inline without one).
  const int64_t rows = lb.fill_tokens;
  const int64_t bytes = static_cast<int64_t>(sizeof(ChunkHeader)) + rows * row_stride_;
  WriteChunkHeader(codec_, rows, cfg_.hidden_dim, lb.staging.data());
  auto payload = AcquirePayload();
  const ChunkKey key{context_id_, layer, lb.open_chunk};
  if (rows == chunk_tokens_) {
    // Full chunk: swap the sealed bytes out and continue staging into the recycled
    // buffer. A partial flush (Seal) copies instead and keeps the buffer + chunk index
    // so later appends rewrite the same chunk when it fills.
    lb.staging.swap(*payload);
    ++lb.open_chunk;
    lb.fill_tokens = 0;
  } else {
    std::memcpy(payload->data(), lb.staging.data(), static_cast<size_t>(bytes));
  }
  lb.dirty = false;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    encoded_bytes_written_ += bytes;
    logical_bytes_written_ += rows * cfg_.hidden_dim * static_cast<int64_t>(sizeof(float));
  }
  StorageBackend* store = store_;
  auto task = [this, store, key, bytes, payload]() mutable {
    // A failed flush must not take down the process (it may run on a background
    // thread); the chunk simply stays absent and restoration reports the context
    // incomplete (HiddenStateReader::LayerComplete / FunctionalHCache::CanRestore).
    if (!store->WriteChunk(key, payload->data(), bytes)) {
      HCACHE_LOG_ERROR << "hidden-state chunk flush failed: ctx=" << key.context_id
                       << " layer=" << key.layer << " chunk=" << key.chunk_index;
    }
    // Recycle regardless of outcome; Seal() drains the pool before `this` dies.
    ReleasePayload(std::move(payload));
  };
  if (flush_pool_ != nullptr) {
    flush_pool_->Submit(std::move(task));
  } else {
    task();
  }
}

void HiddenStateWriter::Seal() {
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    LayerBuffer& lb = layers_[static_cast<size_t>(layer)];
    if (lb.dirty && lb.fill_tokens > 0) {
      FlushChunk(layer, lb);
    }
  }
  if (flush_pool_ != nullptr) {
    flush_pool_->Drain();
  }
}

int64_t HiddenStateWriter::tokens_saved() const { return layers_.empty() ? 0 : layers_[0].tokens_seen; }

DirectHiddenWriter::DirectHiddenWriter(StorageBackend* store, const ModelConfig& cfg,
                                       int64_t context_id, int64_t chunk_tokens,
                                       ChunkCodec codec)
    : inner_(store, /*flush_pool=*/nullptr, cfg, context_id, chunk_tokens, codec) {}

void DirectHiddenWriter::OnLayerInput(int64_t layer, const Tensor& hidden,
                                      const int32_t* positions, int64_t n) {
  // Row-granular synchronous persistence: in the real system each row is one small
  // storage write stalling the layer; we account for them and reuse the chunk encoding
  // so the read path stays identical.
  synchronous_writes_ += n;
  inner_.OnLayerInput(layer, hidden, positions, n);
}

void DirectHiddenWriter::Seal() { inner_.Seal(); }

HiddenStateReader::HiddenStateReader(const StorageBackend* store, const ModelConfig& cfg,
                                     int64_t chunk_tokens, bool verify)
    : store_(store), cfg_(cfg), chunk_tokens_(chunk_tokens), verify_(verify) {
  CHECK(store != nullptr);
}

bool HiddenStateReader::ReadLayerInto(int64_t context_id, int64_t layer, int64_t n,
                                      float* dst) const {
  CHECK_GT(n, 0);
  const int64_t cols = cfg_.hidden_dim;
  const int64_t num_chunks = (n + chunk_tokens_ - 1) / chunk_tokens_;
  // FP32 is the widest encoding, so its chunk size bounds every stored form
  // (including legacy headerless chunks, which lack the 16-byte header).
  const int64_t chunk_cap = EncodedChunkBytes(ChunkCodec::kFp32, chunk_tokens_, cols);
  // Per-thread scratch reused across restores. A fresh multi-MB allocation here would
  // dominate the layer read: large mallocs are mmap-backed, so every call would repay
  // soft page faults (and a zeroing sweep, for a value-initialized vector) across the
  // whole staging buffer. The vector only zero-fills on growth, once per high-water mark.
  static thread_local std::vector<uint8_t> scratch;
  if (scratch.size() < static_cast<size_t>(num_chunks * chunk_cap)) {
    scratch.resize(static_cast<size_t>(num_chunks * chunk_cap));
  }
  uint8_t* const buf = scratch.data();
  // One batched submission for the whole layer: the backend overlaps the chunk
  // fetches (per-device pread fan-out, or one cold round trip on a tiered store)
  // instead of paying num_chunks serial round trips.
  std::vector<ChunkReadRequest> reqs(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    reqs[static_cast<size_t>(c)] =
        ChunkReadRequest{ChunkKey{context_id, layer, c}, buf + c * chunk_cap,
                         chunk_cap, /*result=*/-1};
  }
  if (verify_) {
    store_->ReadChunks(reqs);
  } else {
    store_->ReadChunksUnverified(reqs);
  }
  for (int64_t c = 0; c < num_chunks; ++c) {
    const uint8_t* chunk = buf + c * chunk_cap;
    const int64_t got = reqs[static_cast<size_t>(c)].result;
    // Any failure (absent, detected-corrupt, bad geometry) fails the whole layer —
    // a hidden-state tensor with a hole in it is worthless — but must not take the
    // process down: the caller recomputes from tokens instead.
    if (got <= 0) {
      HCACHE_LOG_ERROR << "hidden-state chunk "
                       << (got == kChunkCorrupt ? "corrupt" : "missing")
                       << ": ctx=" << context_id << " L=" << layer << " C=" << c;
      return false;
    }
    ChunkInfo info;
    const int64_t first_tok = c * chunk_tokens_;
    const int64_t want_tokens = std::min(chunk_tokens_, n - first_tok);
    if (!InspectChunk(chunk, got, cols, &info) || info.cols != cols ||
        info.rows < want_tokens) {
      HCACHE_LOG_ERROR << "hidden-state chunk unparsable or short: ctx=" << context_id
                       << " L=" << layer << " C=" << c << " bytes=" << got;
      return false;
    }
    // Fused decode: dequantize straight into the destination rows.
    DecodeChunkRange(chunk, got, info, 0, want_tokens, 0, cols, dst + first_tok * cols,
                     cols);
  }
  return true;
}

Tensor HiddenStateReader::ReadLayer(int64_t context_id, int64_t layer, int64_t n) const {
  Tensor out({n, cfg_.hidden_dim});
  CHECK(ReadLayerInto(context_id, layer, n, out.data()))
      << "hidden-state read failed: ctx=" << context_id << " L=" << layer;
  return out;
}

bool HiddenStateReader::LayerComplete(int64_t context_id, int64_t layer, int64_t n,
                                      ChunkCodec expected) const {
  const int64_t num_chunks = (n + chunk_tokens_ - 1) / chunk_tokens_;
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t first_tok = c * chunk_tokens_;
    const int64_t want_tokens = std::min(chunk_tokens_, n - first_tok);
    const int64_t size = store_->ChunkSize(ChunkKey{context_id, layer, c});
    if (!ChunkSizeCoversRows(size, want_tokens, chunk_tokens_, cfg_.hidden_dim, expected)) {
      return false;
    }
  }
  return true;
}

bool HiddenStateReader::ContextComplete(int64_t context_id, int64_t n,
                                        ChunkCodec expected) const {
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    if (!LayerComplete(context_id, layer, n, expected)) {
      return false;
    }
  }
  return true;
}

}  // namespace hcache
