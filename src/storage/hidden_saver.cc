#include "src/storage/hidden_saver.h"

#include <cstring>
#include <memory>

namespace hcache {

HiddenStateWriter::HiddenStateWriter(StorageBackend* store, ThreadPool* flush_pool,
                                     const ModelConfig& cfg, int64_t context_id,
                                     int64_t chunk_tokens)
    : store_(store),
      flush_pool_(flush_pool),
      cfg_(cfg),
      context_id_(context_id),
      chunk_tokens_(chunk_tokens),
      layers_(static_cast<size_t>(cfg.num_layers)) {
  CHECK(store != nullptr);
  CHECK_GT(chunk_tokens_, 0);
  const int64_t chunk_floats = chunk_tokens_ * cfg_.hidden_dim;
  CHECK_LE(chunk_floats * static_cast<int64_t>(sizeof(float)), store_->chunk_bytes())
      << "chunk store sized too small for " << cfg_.name;
  for (auto& lb : layers_) {
    lb.staging.resize(static_cast<size_t>(chunk_floats));
  }
}

HiddenStateWriter::~HiddenStateWriter() { Seal(); }

void HiddenStateWriter::OnLayerInput(int64_t layer, const Tensor& hidden,
                                     const int32_t* positions, int64_t n) {
  CHECK_GE(layer, 0);
  CHECK_LT(layer, cfg_.num_layers);
  CHECK_EQ(hidden.dim(1), cfg_.hidden_dim);
  LayerBuffer& lb = layers_[static_cast<size_t>(layer)];
  for (int64_t i = 0; i < n; ++i) {
    CHECK_EQ(static_cast<int64_t>(positions[i]), lb.tokens_seen)
        << "hidden states must arrive append-only";
    // Stage 1: snapshot the row into host staging.
    std::memcpy(lb.staging.data() + lb.fill_tokens * cfg_.hidden_dim, hidden.row(i),
                static_cast<size_t>(cfg_.hidden_dim) * sizeof(float));
    ++lb.fill_tokens;
    ++lb.tokens_seen;
    lb.dirty = true;
    if (lb.fill_tokens == chunk_tokens_) {
      FlushChunk(layer, lb);
    }
  }
}

void HiddenStateWriter::FlushChunk(int64_t layer, LayerBuffer& lb) {
  // Stage 2: hand the chunk to the flush pool (or write inline without one).
  auto payload = std::make_shared<std::vector<float>>(
      lb.staging.begin(), lb.staging.begin() + lb.fill_tokens * cfg_.hidden_dim);
  const ChunkKey key{context_id_, layer, lb.open_chunk};
  if (lb.fill_tokens == chunk_tokens_) {
    // Full chunk: advance to a fresh buffer. A partial flush (Seal) keeps the buffer
    // and chunk index so later appends rewrite the same chunk when it fills.
    ++lb.open_chunk;
    lb.fill_tokens = 0;
  }
  lb.dirty = false;
  StorageBackend* store = store_;
  auto task = [store, key, payload] {
    // A failed flush must not take down the process (it may run on a background
    // thread); the chunk simply stays absent and restoration reports the context
    // incomplete (HiddenStateReader::LayerComplete / FunctionalHCache::CanRestore).
    if (!store->WriteChunk(key, payload->data(),
                           static_cast<int64_t>(payload->size() * sizeof(float)))) {
      HCACHE_LOG_ERROR << "hidden-state chunk flush failed: ctx=" << key.context_id
                       << " layer=" << key.layer << " chunk=" << key.chunk_index;
    }
  };
  if (flush_pool_ != nullptr) {
    flush_pool_->Submit(std::move(task));
  } else {
    task();
  }
}

void HiddenStateWriter::Seal() {
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    LayerBuffer& lb = layers_[static_cast<size_t>(layer)];
    if (lb.dirty && lb.fill_tokens > 0) {
      FlushChunk(layer, lb);
    }
  }
  if (flush_pool_ != nullptr) {
    flush_pool_->Drain();
  }
}

int64_t HiddenStateWriter::tokens_saved() const { return layers_.empty() ? 0 : layers_[0].tokens_seen; }

DirectHiddenWriter::DirectHiddenWriter(StorageBackend* store, const ModelConfig& cfg,
                                       int64_t context_id, int64_t chunk_tokens)
    : inner_(store, /*flush_pool=*/nullptr, cfg, context_id, chunk_tokens) {}

void DirectHiddenWriter::OnLayerInput(int64_t layer, const Tensor& hidden,
                                      const int32_t* positions, int64_t n) {
  // Row-granular synchronous persistence: in the real system each row is one small
  // storage write stalling the layer; we account for them and reuse the chunk encoding
  // so the read path stays identical.
  synchronous_writes_ += n;
  inner_.OnLayerInput(layer, hidden, positions, n);
}

void DirectHiddenWriter::Seal() { inner_.Seal(); }

HiddenStateReader::HiddenStateReader(const StorageBackend* store, const ModelConfig& cfg,
                                     int64_t chunk_tokens)
    : store_(store), cfg_(cfg), chunk_tokens_(chunk_tokens) {
  CHECK(store != nullptr);
}

Tensor HiddenStateReader::ReadLayer(int64_t context_id, int64_t layer, int64_t n) const {
  CHECK_GT(n, 0);
  Tensor out({n, cfg_.hidden_dim});
  const int64_t row_bytes = cfg_.hidden_dim * static_cast<int64_t>(sizeof(float));
  const int64_t num_chunks = (n + chunk_tokens_ - 1) / chunk_tokens_;
  std::vector<float> buf(static_cast<size_t>(chunk_tokens_ * cfg_.hidden_dim));
  for (int64_t c = 0; c < num_chunks; ++c) {
    const ChunkKey key{context_id, layer, c};
    const int64_t got =
        store_->ReadChunk(key, buf.data(), static_cast<int64_t>(buf.size() * sizeof(float)));
    CHECK_GT(got, 0) << "missing chunk ctx=" << context_id << " L=" << layer << " C=" << c;
    const int64_t first_tok = c * chunk_tokens_;
    const int64_t want_tokens = std::min(chunk_tokens_, n - first_tok);
    CHECK_GE(got, want_tokens * row_bytes) << "short chunk";
    std::memcpy(out.row(first_tok), buf.data(),
                static_cast<size_t>(want_tokens * row_bytes));
  }
  return out;
}

bool HiddenStateReader::LayerComplete(int64_t context_id, int64_t layer, int64_t n) const {
  const int64_t row_bytes = cfg_.hidden_dim * static_cast<int64_t>(sizeof(float));
  const int64_t num_chunks = (n + chunk_tokens_ - 1) / chunk_tokens_;
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t first_tok = c * chunk_tokens_;
    const int64_t want_tokens = std::min(chunk_tokens_, n - first_tok);
    const int64_t size = store_->ChunkSize(ChunkKey{context_id, layer, c});
    if (size < want_tokens * row_bytes) {
      return false;
    }
  }
  return true;
}

bool HiddenStateReader::ContextComplete(int64_t context_id, int64_t n) const {
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    if (!LayerComplete(context_id, layer, n)) {
      return false;
    }
  }
  return true;
}

}  // namespace hcache
