// File-backed storage backend — the functional realization of §4.2's SSD tier.
//
// Chunks are fixed-size objects keyed by (context, layer, chunk_index) and striped
// round-robin across N "devices" (directories — each stands in for one NVMe namespace;
// pointing them at distinct mounts gives real multi-device striping). One chunk maps to
// one file under a per-context subdirectory: the paper's design point that chunk
// allocation is incremental (no reservation at max context length, §4.2.1) falls out
// naturally, and DeleteContext can unlink the whole directory so long serving runs do
// not leak empty dirs.
//
// Thread safety: concurrent writers on distinct chunks are safe (the two-stage saver's
// flush threads rely on this); the in-memory index is mutex-guarded. Reads are
// positioned pread calls on a small refcounted fd cache — pread never touches the fd's
// file position, so any number of threads can read the same chunk (even sharing one
// cached fd) concurrently without seek/read interleaving races.
#ifndef HCACHE_SRC_STORAGE_FILE_BACKEND_H_
#define HCACHE_SRC_STORAGE_FILE_BACKEND_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/storage/storage_backend.h"

namespace hcache {

// Durability knobs. The defaults are the crash-consistent configuration; tests and
// tools relax them to observe intermediate states.
struct FileBackendOptions {
  // fsync the temp file before the rename publishes it. With it, a published chunk
  // survives power loss; without it, only process crashes (the rename is still
  // atomic either way). Benches on tmpfs can turn it off — fsync there is ~free but
  // the syscalls are not.
  bool fsync_writes = true;
  // Rebuild the in-memory index from the chunk files already present in the device
  // dirs (a previous process's chunks become readable again after a crash/restart).
  bool recover_index = true;
  // Unlink orphaned `*.tmp` files left by a writer that died mid-write. fsck turns
  // this off so it can classify the orphans instead.
  bool sweep_temp_files = true;
};

class FileBackend : public StorageBackend {
 public:
  // `device_dirs` are created if absent. `chunk_bytes` is the sealed-chunk capacity;
  // the final chunk of a layer may be smaller.
  FileBackend(std::vector<std::string> device_dirs, int64_t chunk_bytes);
  FileBackend(std::vector<std::string> device_dirs, int64_t chunk_bytes,
              const FileBackendOptions& options);

  // Publishes via write-temp + fsync + rename(2): a reader (or a crash) never
  // observes a half-written chunk — at worst an orphaned `<path>.tmp` remains,
  // which the startup recovery scan (or hcache-fsck) sweeps.
  bool WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) override;
  int64_t ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const override;
  // Batched submission: one index pass resolves every request, then the preads fan
  // out grouped per device so each stripe streams its own queue (the whole point of
  // striping, §4.2.1). Stats land in one update equal to the N serial calls'.
  void ReadChunks(std::span<ChunkReadRequest> requests,
                  const BatchCompletion& done = {}) const override;
  void ReadChunksUnverified(std::span<ChunkReadRequest> requests,
                            const BatchCompletion& done = {}) const override;
  bool WriteChunks(std::span<ChunkWriteRequest> requests,
                   const BatchCompletion& done = {}) override;
  bool HasChunk(const ChunkKey& key) const override;
  int64_t ChunkSize(const ChunkKey& key) const override;
  void DeleteContext(int64_t context_id) override;
  std::vector<std::pair<ChunkKey, int64_t>> ListChunks() const override;
  int64_t ReadChunkUnverified(const ChunkKey& key, void* buf,
                              int64_t buf_bytes) const override;
  bool DeleteChunk(const ChunkKey& key) override;
  StorageStats Stats() const override;
  std::string Name() const override { return "file"; }

  // Orphaned temp files the startup recovery scan removed (0 unless recover_index).
  int64_t swept_temp_files() const { return swept_temp_files_; }

  // Device a chunk is striped onto (round-robin by chunk index — §4.2.1's bandwidth
  // aggregation scheme).
  int DeviceOf(const ChunkKey& key) const;

  int num_devices() const { return static_cast<int>(device_dirs_.size()); }
  const std::vector<std::string>& device_dirs() const { return device_dirs_; }

 private:
  std::string ContextDir(int device, int64_t context_id) const;
  std::string PathFor(const ChunkKey& key) const;
  // Ensures the per-context directory exists on `device` (memoized; mkdir is not on
  // the per-write fast path after the first chunk of a context lands on a device).
  bool EnsureContextDir(int device, int64_t context_id);
  // Startup pass: re-registers surviving chunk files in the index and (optionally)
  // sweeps orphaned temp files a crashed writer left behind.
  void RecoverFromDisk();
  // Shared bodies of the verified and unverified read paths.
  int64_t ReadChunkImpl(const ChunkKey& key, void* buf, int64_t buf_bytes,
                        bool verify) const;
  void ReadChunksImpl(std::span<ChunkReadRequest> requests, const BatchCompletion& done,
                      bool verify) const;

  // Owns one O_RDONLY fd; closes it on destruction. Refcounted so an eviction (or
  // DeleteContext) never closes an fd another thread is mid-pread on.
  struct FdHolder;
  // Returns the cached read fd for `key`, opening (outside any lock) and inserting it
  // on miss; nullptr when the file cannot be opened. LRU-bounded.
  std::shared_ptr<FdHolder> AcquireFd(const ChunkKey& key) const;
  void DropCachedFd(const ChunkKey& key);
  void DropContextFds(int64_t context_id);

  std::vector<std::string> device_dirs_;
  FileBackendOptions options_;
  int64_t swept_temp_files_ = 0;  // written once during construction

  // fd cache state, guarded separately from the index so preads in flight never
  // contend with index lookups.
  mutable std::mutex fd_mu_;
  mutable std::list<ChunkKey> fd_lru_;  // front = most recently used
  mutable std::map<ChunkKey,
                   std::pair<std::shared_ptr<FdHolder>, std::list<ChunkKey>::iterator>>
      fd_cache_;

  mutable std::mutex mu_;
  std::map<ChunkKey, int64_t> index_;  // key -> stored size
  std::set<std::pair<int64_t, int>> context_dirs_;  // (context, device) dirs created
  int64_t bytes_stored_ = 0;           // sum of index_ sizes
  int64_t total_writes_ = 0;
  mutable int64_t total_reads_ = 0;    // successful reads only
  mutable int64_t read_bytes_ = 0;     // encoded bytes served by successful reads
  mutable int64_t crc_failures_ = 0;
  mutable int64_t crc_checked_bytes_ = 0;
};

// The storage layer's historical name for the file tier; kept so call sites reading
// the paper's terminology ("chunk store") still resolve.
using ChunkStore = FileBackend;

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_FILE_BACKEND_H_
