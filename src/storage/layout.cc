#include "src/storage/layout.h"

#include "src/common/logging.h"

namespace hcache {

IoPattern RestoreLayerPattern(StorageLayout layout, const ModelConfig& cfg, int64_t n,
                              int64_t chunk_tokens) {
  CHECK_GT(chunk_tokens, 0);
  IoPattern p;
  if (n <= 0) {
    return p;
  }
  switch (layout) {
    case StorageLayout::kLayerChunked:
      p.num_ios = (n + chunk_tokens - 1) / chunk_tokens;
      p.io_size = chunk_tokens * cfg.HiddenBytesPerTokenLayer();
      break;
    case StorageLayout::kTokenMajor:
      // One strided row per token: the layer's slice inside each token record.
      p.num_ios = n;
      p.io_size = cfg.HiddenBytesPerTokenLayer();
      break;
  }
  return p;
}

IoPattern DirectSavePattern(StorageLayout layout, const ModelConfig& cfg, int64_t batch,
                            int64_t /*chunk_tokens*/) {
  IoPattern p;
  if (batch <= 0) {
    return p;
  }
  switch (layout) {
    case StorageLayout::kLayerChunked:
      // Each sequence's new token lands in a different open chunk per layer.
      p.num_ios = cfg.num_layers * batch;
      p.io_size = cfg.HiddenBytesPerTokenLayer();
      break;
    case StorageLayout::kTokenMajor:
      // One contiguous record per sequence covering all layers.
      p.num_ios = batch;
      p.io_size = cfg.HiddenBytesPerToken();
      break;
  }
  return p;
}

IoPattern ChunkFlushPattern(const ModelConfig& cfg, int64_t chunk_tokens) {
  IoPattern p;
  p.num_ios = 1;
  p.io_size = chunk_tokens * cfg.HiddenBytesPerTokenLayer();
  return p;
}

int64_t ReservationWasteBytes(const ModelConfig& cfg, int64_t n) {
  CHECK_GE(n, 0);
  CHECK_LE(n, cfg.max_position);
  return (cfg.max_position - n) * cfg.HiddenBytesPerTokenLayer();
}

}  // namespace hcache
