#include "src/storage/layout.h"

#include <algorithm>
#include <initializer_list>

#include "src/common/logging.h"

namespace hcache {

const char* ChunkCodecName(ChunkCodec codec) {
  switch (codec) {
    case ChunkCodec::kFp32:
      return "fp32";
    case ChunkCodec::kFp16:
      return "fp16";
    case ChunkCodec::kInt8:
      return "int8";
  }
  return "?";
}

int64_t CodecRowBytes(ChunkCodec codec, int64_t cols) {
  CHECK_GT(cols, 0);
  switch (codec) {
    case ChunkCodec::kFp32:
      return cols * 4;
    case ChunkCodec::kFp16:
      return cols * 2;
    case ChunkCodec::kInt8:
      return cols + static_cast<int64_t>(sizeof(float));  // values + per-row scale
  }
  return cols * 4;
}

int64_t EncodedChunkBytes(ChunkCodec codec, int64_t rows, int64_t cols) {
  CHECK_GE(rows, 0);
  return static_cast<int64_t>(sizeof(ChunkHeader)) + rows * CodecRowBytes(codec, cols);
}

bool ChunkSizeCoversRows(int64_t stored_bytes, int64_t min_rows, int64_t max_rows,
                         int64_t cols, ChunkCodec expected) {
  CHECK_GT(cols, 0);
  CHECK_GE(max_rows, min_rows);
  // Encoded form: header + rows * the EXPECTED codec's row stride must land exactly
  // on a row boundary with a row count in range. Only the configured codec's stride
  // is accepted — a short chunk's payload can alias to an in-range row count under a
  // different codec's stride (FP32 vs FP16 alias deterministically at 2:1), which
  // would report a half-saved context restorable and crash the decode path. Both the
  // v2 (24-byte) and v1 (16-byte) header sizes are live on disk; size-aliasing
  // between them is tolerable because the decode path now fails gracefully when the
  // header does not actually parse (or its CRC does not match).
  const int64_t row = CodecRowBytes(expected, cols);
  for (const int64_t header :
       {static_cast<int64_t>(sizeof(ChunkHeader)), kChunkHeaderBytesV1}) {
    const int64_t payload = stored_bytes - header;
    if (payload >= 0 && payload % row == 0) {
      const int64_t rows = payload / row;
      if (rows >= min_rows && rows <= max_rows) {
        return true;
      }
    }
  }
  // Legacy headerless FP32 (v0 contexts resumed under any codec).
  const int64_t legacy_rows = LegacyChunkRows(stored_bytes, cols);
  return legacy_rows >= min_rows && legacy_rows <= max_rows;
}

namespace {

// Shared geometry of the per-layer restore read: chunked -> few large IOs of
// `chunk_tokens` rows; token-major -> one strided row per token (the layer's slice
// inside each token record).
IoPattern RestorePatternForRowBytes(StorageLayout layout, int64_t n, int64_t chunk_tokens,
                                    int64_t row_bytes) {
  CHECK_GT(chunk_tokens, 0);
  IoPattern p;
  if (n <= 0) {
    return p;
  }
  switch (layout) {
    case StorageLayout::kLayerChunked:
      p.num_ios = (n + chunk_tokens - 1) / chunk_tokens;
      p.io_size = chunk_tokens * row_bytes;
      break;
    case StorageLayout::kTokenMajor:
      p.num_ios = n;
      p.io_size = row_bytes;
      break;
  }
  return p;
}

}  // namespace

IoPattern RestoreLayerPattern(StorageLayout layout, const ModelConfig& cfg, int64_t n,
                              int64_t chunk_tokens, ChunkCodec codec) {
  return RestorePatternForRowBytes(layout, n, chunk_tokens,
                                   CodecRowBytes(codec, cfg.hidden_dim));
}

IoPattern KvRestoreLayerPattern(StorageLayout layout, const ModelConfig& cfg, int64_t n,
                                int64_t chunk_tokens) {
  return RestorePatternForRowBytes(layout, n, chunk_tokens, cfg.KvBytesPerTokenLayer());
}

IoPattern DirectSavePattern(StorageLayout layout, const ModelConfig& cfg, int64_t batch,
                            int64_t /*chunk_tokens*/, ChunkCodec codec) {
  IoPattern p;
  if (batch <= 0) {
    return p;
  }
  const int64_t row_bytes = CodecRowBytes(codec, cfg.hidden_dim);
  switch (layout) {
    case StorageLayout::kLayerChunked:
      // Each sequence's new token lands in a different open chunk per layer.
      p.num_ios = cfg.num_layers * batch;
      p.io_size = row_bytes;
      break;
    case StorageLayout::kTokenMajor:
      // One contiguous record per sequence covering all layers.
      p.num_ios = batch;
      p.io_size = cfg.num_layers * row_bytes;
      break;
  }
  return p;
}

IoPattern ChunkFlushPattern(const ModelConfig& cfg, int64_t chunk_tokens, ChunkCodec codec) {
  IoPattern p;
  p.num_ios = 1;
  p.io_size = chunk_tokens * CodecRowBytes(codec, cfg.hidden_dim);
  return p;
}

int64_t ReservationWasteBytes(const ModelConfig& cfg, int64_t n) {
  CHECK_GE(n, 0);
  CHECK_LE(n, cfg.max_position);
  return (cfg.max_position - n) * cfg.HiddenBytesPerTokenLayer();
}

}  // namespace hcache
