// Tiered storage backend: a DRAM hot tier with a capacity budget layered over a cold
// backend — the DRAM→SSD hierarchy the paper's storage manager assumes (§4.2). Writes
// land in DRAM and flow to the cold tier lazily (write-back): when the budget is
// exceeded, whole contexts are evicted in LRU order and their dirty chunks flushed
// down. Reads served from DRAM are `dram_hits`; misses fall through to the cold tier
// (`cold_hits`) and promote the chunk back into DRAM when it can actually fit.
//
// Eviction is context-granular, matching the access pattern: restoration streams every
// chunk of one context, so partial-context residency would still pay a cold read on
// the critical path. LRU order advances whenever any chunk of a context is touched.
//
// Concurrency model (the PR 5 redesign; the old single-mutex tier survives only as
// TieredOptions::Writeback::kLegacyLocked, a benchmark baseline):
//
//   * The chunk map, the logical index, and the per-context LRU metadata are striped
//     across K lock shards keyed by context_id, so operations on distinct contexts
//     never contend on a lock.
//   * Eviction removes the victim from the hot tier synchronously (deterministic LRU
//     decisions) but hands its dirty chunks to a drain queue that a background
//     drainer flushes to the cold tier — the write-back IO leaves the caller's
//     critical path. Chunks awaiting drain remain readable from DRAM
//     (`drain_rescued_chunks`) and a re-read re-admits them when they fit.
//   * No lock is ever held across cold-tier IO: promotion reads, drain write-backs,
//     and write-through flushes all run with every shard lock released (asserted by
//     the re-entrancy test in tests/storage/tiered_async_test.cc).
//   * Backpressure: writers stall (`writer_stalls`) only when un-drained evicted
//     bytes exceed the high-water mark — the budget is otherwise enforced without
//     ever blocking a reader or writer on another context's IO.
//
// Failure semantics: a cold-tier write error during drain rolls the affected chunks
// back into the hot tier dirty (MRU) and un-counts the eviction — the budget degrades
// to best-effort under cold-tier errors, never a reason to drop dirty data.
#ifndef HCACHE_SRC_STORAGE_TIERED_BACKEND_H_
#define HCACHE_SRC_STORAGE_TIERED_BACKEND_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/storage/storage_backend.h"

namespace hcache {

struct TieredOptions {
  // Lock stripes over context_id. 0 = auto: one stripe per 8 chunks of DRAM budget,
  // clamped to [1, 16] — tiny tiers keep one stripe (and thus one global LRU), big
  // tiers stripe so distinct contexts never contend. The budget divides evenly
  // across stripes; a chunk larger than its stripe's share is never hot-admitted.
  int num_shards = 0;

  enum class Writeback {
    kAsync,         // background drainer flushes evicted dirty chunks (default)
    kSync,          // flush on the evicting caller, shard lock dropped around IO —
                    // deterministic stats for single-threaded measurement runs.
                    // NOT for concurrent same-key traffic: without the drainer's
                    // single-writer/inflight tracking, an overwrite or delete racing
                    // a caller-thread flush of the same chunk can strand stale bytes
                    // in the cold tier. Concurrent workloads use kAsync.
    kLegacyLocked,  // PR 4 baseline: flush inline HOLDING the shard lock; exists only
                    // so the cluster bench can quantify what the redesign removes
  };
  Writeback writeback = Writeback::kAsync;

  // Async backpressure: writers stall once queued-for-drain bytes exceed
  // high_water_factor * dram_capacity_bytes + 4 chunks (the floor keeps 0-budget
  // write-through tiers from stalling on every write).
  double high_water_factor = 1.0;

  // Transient cold-tier write failures (a loaded device, a momentary IO error) are
  // retried up to this many times with jittered doubling backoff (WritebackBackoffUs)
  // before the rollback path re-admits the chunks to DRAM. 0 = fail straight to
  // rollback.
  int writeback_retry_limit = 3;
  int64_t writeback_retry_backoff_us = 500;       // round-0 backoff ceiling
  int64_t writeback_retry_backoff_cap_us = 8000;  // backoff ceiling (bounds shutdown)
};

// The drainer's retry sleep for round N: equal-jitter exponential backoff. The
// ceiling doubles from writeback_retry_backoff_us each round, clamps at
// writeback_retry_backoff_cap_us, and the sleep is drawn from [ceiling/2, ceiling]
// by a splitmix64 mix of (seed, round) — deterministic (pure in its inputs, no
// global RNG), so tests can pin exact values, yet drainers retrying against the
// same overloaded cold tier fan out instead of thundering in lockstep. A
// non-positive base or cap disables the sleep (returns 0).
int64_t WritebackBackoffUs(const TieredOptions& options, int round, uint64_t seed);

class TieredBackend : public StorageBackend {
 public:
  // `cold` must outlive the backend; it defines chunk_bytes. `dram_capacity_bytes`
  // is the hot-tier budget (0 = write-through: every chunk evicts immediately).
  TieredBackend(StorageBackend* cold, int64_t dram_capacity_bytes,
                const TieredOptions& options = TieredOptions{});
  // Drains any still-queued write-backs before stopping the drainer: destruction
  // without an explicit Quiesce() never drops dirty data on the floor.
  ~TieredBackend() override;

  bool WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) override;
  int64_t ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const override;
  // Batched read in three phases: (1) per shard, under that shard's lock, serve hot
  // hits and drain-queue rescues and snapshot the misses' write generations; (2) with
  // every lock released, ONE batched cold-tier round trip for all misses — a restore
  // that hits cold pays one submission instead of a per-chunk lock/IO/lock cycle;
  // (3) per shard, gen-checked clean promotion under the lock, eviction tickets
  // dispatched after release. Promotion, rescue, budget, and short-buffer rules are
  // exactly ReadChunk's; no lock is ever held across cold-tier IO.
  // (kLegacyLocked keeps the serial loop — it is the pre-redesign baseline.)
  void ReadChunks(std::span<ChunkReadRequest> requests,
                  const BatchCompletion& done = {}) const override;
  bool HasChunk(const ChunkKey& key) const override;
  int64_t ChunkSize(const ChunkKey& key) const override;
  void DeleteContext(int64_t context_id) override;
  std::vector<std::pair<ChunkKey, int64_t>> ListChunks() const override;
  // Verified read first (DRAM bytes are trusted; a cold hit is verified by the cold
  // backend); only a detected-corrupt cold chunk falls through to the cold tier's
  // unverified read, so fsck can inspect the damaged bytes.
  int64_t ReadChunkUnverified(const ChunkKey& key, void* buf,
                              int64_t buf_bytes) const override;
  bool DeleteChunk(const ChunkKey& key) override;
  StorageStats Stats() const override;
  std::string Name() const override { return "tiered(" + cold_->Name() + ")"; }

  // Blocks until the drain queue is empty and no write-back is in flight: every
  // accepted write is durable in its final tier and Stats() is stable.
  void Quiesce() override;

  int64_t dram_capacity_bytes() const { return dram_capacity_bytes_; }
  int64_t dram_bytes() const;  // hot-tier residency (excludes queued-for-drain bytes)
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // True when the chunk currently resides in the hot tier (test/inspection hook).
  bool IsDramResident(const ChunkKey& key) const;
  // True when the chunk sits in the drain queue awaiting write-back (test hook).
  bool IsDrainPending(const ChunkKey& key) const;

  StorageBackend* cold() const { return cold_; }

 private:
  struct HotChunk {
    std::vector<char> data;
    bool dirty = false;  // newer than (or absent from) the cold tier
  };
  struct PendingChunk {
    // Shared so a concurrent rescue read can serve from the payload while the
    // drainer writes it out.
    std::shared_ptr<const std::vector<char>> data;
    uint64_t gen = 0;  // eviction generation; a stale ticket entry is skipped
  };
  struct ContextLru {
    std::list<int64_t>::iterator lru_pos;
  };
  struct IndexEntry {
    int64_t size = 0;
    // Monotonic write generation (global counter): a promotion admits its cold copy
    // only when the generation it snapshotted before the unlocked cold read is still
    // current — otherwise a concurrent write superseded the bytes it holds.
    uint64_t gen = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<ChunkKey, HotChunk> hot;          // context-major key order
    std::map<ChunkKey, PendingChunk> pending;  // evicted, awaiting drain
    std::map<int64_t, ContextLru> contexts;    // ctx -> LRU handle
    std::list<int64_t> lru;                    // front = coldest context
    std::map<ChunkKey, IndexEntry> index;      // logical contents: key -> size+gen
    int64_t capacity = 0;                      // this stripe's budget share
    int64_t hot_bytes = 0;
    int64_t bytes_stored = 0;  // sum of index sizes
  };
  // One evicted context's dirty chunks, in key order. Write-back is per-ticket: a
  // cold-tier failure rolls the ticket's remaining chunks back into the hot tier.
  struct DrainTicket {
    int64_t context_id = 0;
    size_t shard = 0;
    // True for real evictions (counted in evicted_contexts, un-counted on failure);
    // false for oversized write-through chunks that were never hot-resident.
    bool counted_eviction = false;
    std::vector<std::pair<ChunkKey, uint64_t>> chunks;  // (key, eviction gen)
  };

  size_t ShardOf(int64_t context_id) const {
    return static_cast<size_t>(static_cast<uint64_t>(context_id) % shards_.size());
  }

  // Moves `context_id` to the MRU end of its shard's LRU, creating the entry if new.
  // shard.mu held.
  void TouchLocked(Shard& shard, int64_t context_id) const;
  // Inserts a chunk into the hot tier, adjusting byte accounting. shard.mu held.
  void InsertHotLocked(Shard& shard, const ChunkKey& key, const char* data,
                       int64_t bytes, bool dirty) const;
  // Evicts LRU contexts of this shard until hot_bytes <= capacity, appending one
  // DrainTicket per victim with dirty chunks to `tickets` (clean chunks are dropped
  // outright — the cold tier already holds them). shard.mu held.
  void EvictToBudgetLocked(Shard& shard, std::vector<DrainTicket>* tickets) const;
  // Routes freshly-cut tickets per the writeback mode: enqueue to the drainer
  // (kAsync), flush inline with the lock dropped (kSync), or — kLegacyLocked only —
  // is never called because eviction flushed under the lock. No shard lock held.
  void DispatchTickets(std::vector<DrainTicket> tickets) const;
  // Flushes one ticket's chunks to the cold tier, taking shard.mu only around map
  // bookkeeping — never across cold_->WriteChunk. Returns false when any chunk
  // failed (those chunks are rolled back into the hot tier).
  bool ProcessTicket(const DrainTicket& ticket) const;
  // Blocks the caller while queued-for-drain bytes sit above the high-water mark.
  void MaybeStallWriter() const;
  // Wakes waiters on the drain plane (stalled writers, Quiesce) after pending bytes
  // were retired outside the drainer — a cancel on overwrite/delete or a rescue.
  void SignalDrainProgress() const;
  void DrainLoop();

  // Legacy (PR 4) eviction: flush dirty victims inline while holding shard.mu — the
  // serialization the redesign removes; kept as the bench's comparison baseline.
  void LegacyEvictToBudgetLocked(Shard& shard) const;

  StorageBackend* cold_;
  int64_t dram_capacity_bytes_;
  TieredOptions options_;
  int64_t high_water_bytes_ = 0;

  // Promotion, rescue, and LRU bookkeeping happen on the (const) read path, so the
  // tier is mutable state guarded per shard.
  mutable std::vector<std::unique_ptr<Shard>> shards_;

  // Drain plane (kAsync): guarded by drain_mu_. The drainer holds drain_mu_ only
  // around queue pops and state flips, never across cold-tier IO.
  mutable std::mutex drain_mu_;
  mutable std::condition_variable drain_cv_;    // wakes the drainer
  mutable std::condition_variable drained_cv_;  // wakes stalled writers / Quiesce
  mutable std::deque<DrainTicket> drain_queue_;
  mutable int64_t inflight_context_ = -1;  // context currently being written back
  bool shutting_down_ = false;
  std::thread drainer_;

  mutable std::atomic<uint64_t> evict_gen_{0};
  std::atomic<uint64_t> write_gen_{0};             // stamps IndexEntry::gen
  mutable std::atomic<int64_t> pending_bytes_{0};  // global queued-for-drain bytes

  // Counters (atomics: updated from caller threads and the drainer).
  mutable std::atomic<int64_t> total_writes_{0};
  mutable std::atomic<int64_t> total_reads_{0};
  mutable std::atomic<int64_t> dram_hits_{0};
  mutable std::atomic<int64_t> cold_hits_{0};
  mutable std::atomic<int64_t> dram_hit_bytes_{0};
  mutable std::atomic<int64_t> cold_hit_bytes_{0};
  mutable std::atomic<int64_t> evicted_contexts_{0};
  mutable std::atomic<int64_t> writeback_chunks_{0};
  mutable std::atomic<int64_t> writeback_bytes_{0};
  mutable std::atomic<int64_t> drain_rescued_chunks_{0};
  mutable std::atomic<int64_t> writer_stalls_{0};
  mutable std::atomic<int64_t> writeback_failures_{0};
  mutable std::atomic<int64_t> promotions_skipped_{0};
  mutable std::atomic<int64_t> writeback_retries_{0};
  mutable std::atomic<int64_t> crc_failures_{0};  // cold reads rejected as corrupt
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_TIERED_BACKEND_H_
