// Tiered storage backend: a DRAM hot tier with a capacity budget layered over a cold
// backend — the DRAM→SSD hierarchy the paper's storage manager assumes (§4.2). Writes
// land in DRAM and flow to the cold tier lazily (write-back): when the budget is
// exceeded, whole contexts are evicted in LRU order, flushing their dirty chunks down.
// Reads served from DRAM are `dram_hits`; misses fall through to the cold tier
// (`cold_hits`) and promote the chunk back into DRAM.
//
// Eviction is context-granular, matching the access pattern: restoration streams every
// chunk of one context, so partial-context residency would still pay a cold read on
// the critical path. LRU order advances whenever any chunk of a context is touched.
//
// Thread safety: all operations are serialized on one mutex, which is held across
// cold-tier IO during eviction and promotion. Concurrent writers on distinct chunks
// are safe (the interface contract); they just serialize.
#ifndef HCACHE_SRC_STORAGE_TIERED_BACKEND_H_
#define HCACHE_SRC_STORAGE_TIERED_BACKEND_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/storage_backend.h"

namespace hcache {

class TieredBackend : public StorageBackend {
 public:
  // `cold` must outlive the backend; it defines chunk_bytes. `dram_capacity_bytes`
  // is the hot-tier budget (0 = write-through: every chunk evicts immediately).
  TieredBackend(StorageBackend* cold, int64_t dram_capacity_bytes);

  bool WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) override;
  int64_t ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const override;
  bool HasChunk(const ChunkKey& key) const override;
  int64_t ChunkSize(const ChunkKey& key) const override;
  void DeleteContext(int64_t context_id) override;
  StorageStats Stats() const override;
  std::string Name() const override { return "tiered(" + cold_->Name() + ")"; }

  int64_t dram_capacity_bytes() const { return dram_capacity_bytes_; }
  int64_t dram_bytes() const;

  // True when the chunk currently resides in the hot tier (test/inspection hook).
  bool IsDramResident(const ChunkKey& key) const;

  StorageBackend* cold() const { return cold_; }

 private:
  struct HotChunk {
    std::vector<char> data;
    bool dirty = false;  // newer than (or absent from) the cold tier
  };
  struct ContextLru {
    std::list<int64_t>::iterator lru_pos;
  };

  // Moves `context_id` to the MRU end, creating its LRU entry if new. mu_ held.
  void TouchLocked(int64_t context_id) const;
  // Evicts LRU contexts (write-back) until dram_bytes_ <= dram_capacity_bytes_. On a
  // cold-tier write failure the victim is kept resident (requeued MRU) and eviction
  // stops for this round — the budget is best-effort under cold-tier errors, never a
  // reason to drop dirty data. mu_ held.
  void EvictToBudgetLocked() const;
  // Inserts a chunk into the hot tier, adjusting byte accounting. mu_ held.
  void InsertHotLocked(const ChunkKey& key, const char* data, int64_t bytes,
                       bool dirty) const;

  StorageBackend* cold_;
  int64_t dram_capacity_bytes_;

  // Promotion and LRU bookkeeping happen on the (const) read path, so the hot tier is
  // mutable state guarded by mu_.
  mutable std::mutex mu_;
  mutable std::map<ChunkKey, HotChunk> hot_;          // context-major key order
  mutable std::map<int64_t, ContextLru> contexts_;    // ctx -> LRU handle + bytes
  mutable std::list<int64_t> lru_;                    // front = coldest context
  mutable int64_t dram_bytes_ = 0;
  std::map<ChunkKey, int64_t> index_;                 // logical contents: key -> size
  int64_t bytes_stored_ = 0;                          // sum of index_ sizes
  int64_t total_writes_ = 0;
  mutable int64_t total_reads_ = 0;
  mutable int64_t dram_hits_ = 0;
  mutable int64_t cold_hits_ = 0;
  mutable int64_t dram_hit_bytes_ = 0;
  mutable int64_t cold_hit_bytes_ = 0;
  mutable int64_t evicted_contexts_ = 0;
  mutable int64_t writeback_chunks_ = 0;
  mutable int64_t writeback_bytes_ = 0;
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_TIERED_BACKEND_H_
