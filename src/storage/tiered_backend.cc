#include "src/storage/tiered_backend.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/common/logging.h"

namespace hcache {

namespace {

int AutoShards(int64_t capacity_bytes, int64_t chunk_bytes) {
  const int64_t stripes = capacity_bytes / (8 * chunk_bytes);
  return static_cast<int>(std::clamp<int64_t>(stripes, 1, 16));
}

}  // namespace

int64_t WritebackBackoffUs(const TieredOptions& options, int round, uint64_t seed) {
  int64_t ceiling = options.writeback_retry_backoff_us;
  if (ceiling <= 0 || options.writeback_retry_backoff_cap_us <= 0) {
    return 0;
  }
  for (int i = 0; i < round && ceiling < options.writeback_retry_backoff_cap_us; ++i) {
    ceiling *= 2;
  }
  ceiling = std::min(ceiling, options.writeback_retry_backoff_cap_us);
  // splitmix64 over (seed, round): well-mixed and reproducible.
  uint64_t x = seed + 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(round) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  // Equal jitter: keep at least half the ceiling so progress never stalls on an
  // unlucky near-zero draw, spread the rest to decorrelate concurrent drainers.
  const int64_t floor = ceiling - ceiling / 2;
  return floor + static_cast<int64_t>(x % static_cast<uint64_t>(ceiling / 2 + 1));
}

TieredBackend::TieredBackend(StorageBackend* cold, int64_t dram_capacity_bytes,
                             const TieredOptions& options)
    : StorageBackend(cold->chunk_bytes()),
      cold_(cold),
      dram_capacity_bytes_(dram_capacity_bytes),
      options_(options) {
  CHECK(cold != nullptr);
  CHECK_GE(dram_capacity_bytes_, 0);
  const int num_shards = options_.num_shards > 0
                             ? options_.num_shards
                             : AutoShards(dram_capacity_bytes_, chunk_bytes());
  shards_.reserve(static_cast<size_t>(num_shards));
  const int64_t base = dram_capacity_bytes_ / num_shards;
  const int64_t rem = dram_capacity_bytes_ % num_shards;
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < rem ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
  high_water_bytes_ =
      static_cast<int64_t>(options_.high_water_factor *
                           static_cast<double>(dram_capacity_bytes_)) +
      4 * chunk_bytes();
  if (options_.writeback == TieredOptions::Writeback::kAsync) {
    drainer_ = std::thread(&TieredBackend::DrainLoop, this);
  }
}

TieredBackend::~TieredBackend() {
  if (drainer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      shutting_down_ = true;
    }
    drain_cv_.notify_all();
    drained_cv_.notify_all();
    drainer_.join();
  }
}

void TieredBackend::TouchLocked(Shard& shard, int64_t context_id) const {
  auto it = shard.contexts.find(context_id);
  if (it == shard.contexts.end()) {
    shard.lru.push_back(context_id);
    shard.contexts[context_id] = ContextLru{std::prev(shard.lru.end())};
  } else {
    shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_pos);
  }
}

void TieredBackend::InsertHotLocked(Shard& shard, const ChunkKey& key, const char* data,
                                    int64_t bytes, bool dirty) const {
  auto& chunk = shard.hot[key];
  const int64_t delta = bytes - static_cast<int64_t>(chunk.data.size());
  chunk.data.assign(data, data + bytes);
  chunk.dirty = dirty;
  shard.hot_bytes += delta;
}

void TieredBackend::EvictToBudgetLocked(Shard& shard,
                                        std::vector<DrainTicket>* tickets) const {
  while (shard.hot_bytes > shard.capacity && !shard.lru.empty()) {
    const int64_t victim = shard.lru.front();
    DrainTicket ticket;
    ticket.context_id = victim;
    ticket.shard = ShardOf(victim);
    ticket.counted_eviction = true;
    // Move the victim's chunks out of the hot tier NOW (the LRU decision stays
    // deterministic and the budget is restored immediately); dirty payloads park in
    // the pending map until the drainer — or the caller, in kSync mode — writes
    // them back with no shard lock held. Clean chunks already exist in the cold
    // tier and are simply dropped.
    bool held_chunks = false;
    auto it = shard.hot.lower_bound(ChunkKey{victim, 0, 0});
    while (it != shard.hot.end() && it->first.context_id == victim) {
      held_chunks = true;
      const int64_t bytes = static_cast<int64_t>(it->second.data.size());
      if (it->second.dirty) {
        const uint64_t gen = ++evict_gen_;
        auto& pending = shard.pending[it->first];
        if (pending.data != nullptr) {
          pending_bytes_ -= static_cast<int64_t>(pending.data->size());
        }
        pending.data =
            std::make_shared<const std::vector<char>>(std::move(it->second.data));
        pending.gen = gen;
        pending_bytes_ += bytes;
        ticket.chunks.emplace_back(it->first, gen);
      }
      shard.hot_bytes -= bytes;
      it = shard.hot.erase(it);
    }
    shard.lru.pop_front();
    shard.contexts.erase(victim);
    if (held_chunks) {  // an emptied-out LRU entry is not an eviction
      ++evicted_contexts_;
    }
    if (!ticket.chunks.empty()) {
      tickets->push_back(std::move(ticket));
    }
  }
}

void TieredBackend::LegacyEvictToBudgetLocked(Shard& shard) const {
  while (shard.hot_bytes > shard.capacity && !shard.lru.empty()) {
    const int64_t victim = shard.lru.front();
    auto it = shard.hot.lower_bound(ChunkKey{victim, 0, 0});
    while (it != shard.hot.end() && it->first.context_id == victim) {
      if (it->second.dirty) {
        const int64_t bytes = static_cast<int64_t>(it->second.data.size());
        // The PR 4 behavior this mode preserves: the cold-tier write happens while
        // shard.mu is HELD, serializing every other operation on the stripe.
        if (!cold_->WriteChunk(it->first, it->second.data.data(), bytes)) {
          HCACHE_LOG_ERROR << "tiered write-back failed: ctx=" << it->first.context_id
                           << " L=" << it->first.layer << " C=" << it->first.chunk_index
                           << "; keeping context in DRAM";
          shard.lru.splice(shard.lru.end(), shard.lru,
                           shard.contexts.at(victim).lru_pos);
          return;
        }
        ++writeback_chunks_;
        writeback_bytes_ += bytes;
      }
      shard.hot_bytes -= static_cast<int64_t>(it->second.data.size());
      it = shard.hot.erase(it);
    }
    shard.lru.pop_front();
    shard.contexts.erase(victim);
    ++evicted_contexts_;
  }
}

bool TieredBackend::ProcessTicket(const DrainTicket& ticket) const {
  Shard& shard = *shards_[ticket.shard];
  // Snapshot every still-current payload under ONE lock hold, then land the whole
  // ticket in ONE batched cold-tier submission with no lock held — on a striped file
  // cold tier the writes fan out per device instead of trickling one fsync at a time.
  struct Flush {
    ChunkKey key;
    uint64_t gen = 0;
    std::shared_ptr<const std::vector<char>> data;
  };
  std::vector<Flush> flushes;
  flushes.reserve(ticket.chunks.size());
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, gen] : ticket.chunks) {
      const auto it = shard.pending.find(key);
      if (it == shard.pending.end() || it->second.gen != gen) {
        continue;  // rescued, superseded by a newer write, or deleted
      }
      flushes.push_back(Flush{key, gen, it->second.data});
    }
  }
  bool all_ok = true;
  // Cold writes are attempted in rounds: each round lands one batched WriteChunks
  // (no lock held), retires the successes, and retries the failures after a capped,
  // jittered doubling backoff (WritebackBackoffUs, seeded by the round's first
  // failed key so concurrent drainers desynchronize) — a transiently overloaded
  // cold tier absorbs the flush without tripping the rollback. Before every round
  // each chunk's pending generation is re-checked under the shard lock, so a
  // rescue/overwrite/delete that happened while we slept drops the chunk from the
  // retry set.
  std::vector<Flush> attempt = std::move(flushes);
  for (int round = 0; !attempt.empty(); ++round) {
    std::vector<ChunkWriteRequest> writes;
    writes.reserve(attempt.size());
    for (const Flush& f : attempt) {
      writes.push_back(ChunkWriteRequest{f.key, f.data->data(),
                                         static_cast<int64_t>(f.data->size()),
                                         /*ok=*/false});
    }
    cold_->WriteChunks(writes);  // no lock held
    std::vector<Flush> failed;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (size_t i = 0; i < attempt.size(); ++i) {
        const Flush& f = attempt[i];
        const auto it = shard.pending.find(f.key);
        if (it == shard.pending.end() || it->second.gen != f.gen) {
          continue;  // superseded while the write was in flight; its bytes moved on
        }
        const int64_t bytes = static_cast<int64_t>(f.data->size());
        if (writes[i].ok) {
          shard.pending.erase(it);
          pending_bytes_ -= bytes;
          ++writeback_chunks_;
          writeback_bytes_ += bytes;
          continue;
        }
        if (round < options_.writeback_retry_limit) {
          failed.push_back(f);  // stays pending (still rescuable) for the next round
          continue;
        }
        all_ok = false;
        shard.pending.erase(it);
        pending_bytes_ -= bytes;
        HCACHE_LOG_ERROR << "tiered write-back failed: ctx=" << f.key.context_id
                         << " L=" << f.key.layer << " C=" << f.key.chunk_index
                         << " after " << round << " retries; re-admitting to DRAM";
        InsertHotLocked(shard, f.key, f.data->data(), bytes, /*dirty=*/true);
        TouchLocked(shard, f.key.context_id);
      }
    }
    if (!failed.empty()) {
      writeback_retries_ += static_cast<int64_t>(failed.size());
      const ChunkKey& k = failed.front().key;
      const uint64_t seed = (static_cast<uint64_t>(k.context_id) << 20) ^
                            (static_cast<uint64_t>(k.layer) << 10) ^
                            static_cast<uint64_t>(k.chunk_index);
      std::this_thread::sleep_for(
          std::chrono::microseconds(WritebackBackoffUs(options_, round, seed)));
    }
    attempt = std::move(failed);
  }
  if (!all_ok) {
    // The context is (at least partially) resident again: the eviction did not
    // stick, so roll its count back (write-through tickets never counted one) and
    // surface the failure instead.
    ++writeback_failures_;
    if (ticket.counted_eviction) {
      --evicted_contexts_;
    }
  }
  // One wakeup per ticket: waiter predicates (pending below high water, queue
  // drained) are monotone across the chunks just retired.
  SignalDrainProgress();
  return all_ok;
}

void TieredBackend::DispatchTickets(std::vector<DrainTicket> tickets) const {
  if (tickets.empty()) {
    return;
  }
  if (options_.writeback == TieredOptions::Writeback::kAsync) {
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      for (auto& t : tickets) {
        drain_queue_.push_back(std::move(t));
      }
    }
    drain_cv_.notify_one();
  } else {
    for (const DrainTicket& t : tickets) {
      ProcessTicket(t);
    }
  }
}

void TieredBackend::SignalDrainProgress() const {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
  }
  drained_cv_.notify_all();
}

void TieredBackend::MaybeStallWriter() const {
  if (options_.writeback != TieredOptions::Writeback::kAsync ||
      pending_bytes_.load() <= high_water_bytes_) {
    return;
  }
  ++writer_stalls_;
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_cv_.wait(lock, [this] {
    return shutting_down_ || pending_bytes_.load() <= high_water_bytes_;
  });
}

void TieredBackend::DrainLoop() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  for (;;) {
    drain_cv_.wait(lock, [this] { return shutting_down_ || !drain_queue_.empty(); });
    // On shutdown, finish the queue first: WriteChunk returned true for these
    // bytes, so an un-quiesced destruction must still land every dirty chunk in
    // the cold tier (the "never drop dirty data" contract).
    if (drain_queue_.empty()) {
      if (shutting_down_) {
        return;
      }
      continue;
    }
    DrainTicket ticket = std::move(drain_queue_.front());
    drain_queue_.pop_front();
    inflight_context_ = ticket.context_id;
    lock.unlock();
    ProcessTicket(ticket);
    lock.lock();
    inflight_context_ = -1;
    drained_cv_.notify_all();
  }
}

void TieredBackend::Quiesce() {
  if (options_.writeback != TieredOptions::Writeback::kAsync) {
    return;
  }
  std::unique_lock<std::mutex> lock(drain_mu_);
  // pending_bytes_ covers the window where a concurrent caller has parked evicted
  // chunks in a shard's pending map but not yet enqueued their ticket (eviction
  // happens under the shard lock, the enqueue after releasing it) — an empty queue
  // alone does not mean every accepted write is durable yet.
  drained_cv_.wait(lock, [this] {
    return drain_queue_.empty() && inflight_context_ == -1 &&
           pending_bytes_.load() == 0;
  });
}

bool TieredBackend::WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, chunk_bytes());
  Shard& shard = *shards_[ShardOf(key.context_id)];
  std::vector<DrainTicket> tickets;
  bool cancelled_pending = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // A queued write-back of this chunk is superseded: cancel it so a slow drain
    // can never clobber the cold tier with stale data after this version's flush.
    const auto pit = shard.pending.find(key);
    if (pit != shard.pending.end()) {
      pending_bytes_ -= static_cast<int64_t>(pit->second.data->size());
      shard.pending.erase(pit);
      cancelled_pending = true;
    }
    auto& indexed = shard.index[key];
    shard.bytes_stored += bytes - indexed.size;
    indexed.size = bytes;
    indexed.gen = ++write_gen_;
    ++total_writes_;
    if (bytes > shard.capacity &&
        options_.writeback != TieredOptions::Writeback::kLegacyLocked) {
      // A chunk that can never be hot-resident within its stripe's share goes
      // straight to the drain plane (write-through), instead of being admitted and
      // then flushing every other resident of the stripe on its way back out.
      const auto hot_it = shard.hot.find(key);
      if (hot_it != shard.hot.end()) {  // a smaller resident version is superseded
        shard.hot_bytes -= static_cast<int64_t>(hot_it->second.data.size());
        shard.hot.erase(hot_it);
        // If that was the context's last hot chunk, retire its LRU entry too — an
        // empty resident would be popped by a later eviction round as a phantom.
        const auto next = shard.hot.lower_bound(ChunkKey{key.context_id, 0, 0});
        if (next == shard.hot.end() || next->first.context_id != key.context_id) {
          const auto ctx_it = shard.contexts.find(key.context_id);
          if (ctx_it != shard.contexts.end()) {
            shard.lru.erase(ctx_it->second.lru_pos);
            shard.contexts.erase(ctx_it);
          }
        }
      }
      const char* src = static_cast<const char*>(data);
      const uint64_t gen = ++evict_gen_;
      auto& pending = shard.pending[key];
      pending.data = std::make_shared<const std::vector<char>>(src, src + bytes);
      pending.gen = gen;
      pending_bytes_ += bytes;
      DrainTicket ticket;
      ticket.context_id = key.context_id;
      ticket.shard = ShardOf(key.context_id);
      ticket.chunks.emplace_back(key, gen);
      tickets.push_back(std::move(ticket));
    } else {
      TouchLocked(shard, key.context_id);
      InsertHotLocked(shard, key, static_cast<const char*>(data), bytes,
                      /*dirty=*/true);
      // The chunk is durably in the hot tier at this point; write-back concerns
      // *other* contexts and must not fail this write.
      if (options_.writeback == TieredOptions::Writeback::kLegacyLocked) {
        LegacyEvictToBudgetLocked(shard);
      } else {
        EvictToBudgetLocked(shard, &tickets);
      }
    }
  }
  if (cancelled_pending) {
    SignalDrainProgress();
  }
  DispatchTickets(std::move(tickets));
  MaybeStallWriter();
  return true;
}

int64_t TieredBackend::ReadChunk(const ChunkKey& key, void* buf,
                                 int64_t buf_bytes) const {
  Shard& shard = *shards_[ShardOf(key.context_id)];
  constexpr int64_t kColdMiss = -2;  // fall through to the cold tier
  int64_t dram_result = kColdMiss;
  uint64_t read_gen = 0;  // the write generation the unlocked cold read serves
  bool rescued_pending = false;
  std::vector<DrainTicket> tickets;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto hot_it = shard.hot.find(key);
    const auto pit =
        hot_it != shard.hot.end() ? shard.pending.end() : shard.pending.find(key);
    if (hot_it != shard.hot.end()) {
      const int64_t size = static_cast<int64_t>(hot_it->second.data.size());
      if (size > buf_bytes) {
        return -1;
      }
      std::memcpy(buf, hot_it->second.data.data(), static_cast<size_t>(size));
      TouchLocked(shard, key.context_id);
      ++total_reads_;
      ++dram_hits_;
      dram_hit_bytes_ += size;
      dram_result = size;
    } else if (pit != shard.pending.end()) {
      // Rescue: the chunk was evicted but its write-back has not retired — the
      // payload is still in DRAM, so serve it from the drain queue (a DRAM hit).
      // Re-admit it (still dirty; its queued flush is cancelled by the erase) only
      // when it fits the stripe's FREE space: a rescue must never trigger an
      // eviction, or alternating reads of a context bigger than its stripe would
      // cycle rescue→re-admit→evict→re-flush and double the cold-tier write IO.
      const std::shared_ptr<const std::vector<char>> data = pit->second.data;
      const int64_t size = static_cast<int64_t>(data->size());
      if (size > buf_bytes) {
        return -1;
      }
      std::memcpy(buf, data->data(), static_cast<size_t>(size));
      ++total_reads_;
      ++dram_hits_;
      dram_hit_bytes_ += size;
      ++drain_rescued_chunks_;
      if (size <= shard.capacity - shard.hot_bytes) {
        pending_bytes_ -= size;
        shard.pending.erase(pit);
        rescued_pending = true;
        InsertHotLocked(shard, key, data->data(), size, /*dirty=*/true);
        TouchLocked(shard, key.context_id);
      }
      dram_result = size;
    } else {
      const auto iit = shard.index.find(key);
      if (iit == shard.index.end()) {
        return -1;
      }
      if (iit->second.size > buf_bytes) {
        return -1;  // short-buffer contract: no IO, no stats, no side effects
      }
      read_gen = iit->second.gen;
    }
  }
  if (dram_result != kColdMiss) {
    if (rescued_pending) {
      SignalDrainProgress();
    }
    DispatchTickets(std::move(tickets));
    return dram_result;
  }
  // Miss in DRAM: the chunk lives in the cold tier. The read runs with no lock
  // held, so other contexts — and other chunks of this one — proceed concurrently.
  const int64_t got = cold_->ReadChunk(key, buf, buf_bytes);
  if (got == kChunkCorrupt) {
    // Detected at the cold tier: surface the distinct status (the chunk EXISTS,
    // callers must fall back to recompute, not re-read) and never promote damage.
    ++crc_failures_;
    return kChunkCorrupt;
  }
  if (got < 0) {
    return got;
  }
  ++total_reads_;
  ++cold_hits_;
  cold_hit_bytes_ += got;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Promote: a restored context is likely to be restored again soon (the §6.2.1
    // caching argument); admit the chunk clean so re-eviction is free. Skip when the
    // chunk can never fit its stripe's budget (a 0-budget write-through tier would
    // otherwise evict-and-churn on every read), or when the bytes read are stale: a
    // concurrent write bumps the index generation (even if its own copy has already
    // drained through to the cold tier), and a delete removes the entry — either
    // way this copy must not be re-admitted over newer durable data.
    const auto iit = shard.index.find(key);
    const bool current = iit != shard.index.end() && iit->second.gen == read_gen;
    const bool displaced =
        shard.hot.count(key) != 0 || shard.pending.count(key) != 0;
    if (current && !displaced) {
      if (got <= shard.capacity) {
        InsertHotLocked(shard, key, static_cast<const char*>(buf), got,
                        /*dirty=*/false);
        TouchLocked(shard, key.context_id);
        if (options_.writeback == TieredOptions::Writeback::kLegacyLocked) {
          // Faithful PR 4 baseline: the promotion-triggered eviction flushes while
          // the lock is HELD, exactly like the write path in this mode.
          LegacyEvictToBudgetLocked(shard);
        } else {
          EvictToBudgetLocked(shard, &tickets);
        }
      } else {
        ++promotions_skipped_;
      }
    }
  }
  DispatchTickets(std::move(tickets));
  return got;
}

void TieredBackend::ReadChunks(std::span<ChunkReadRequest> requests,
                               const BatchCompletion& done) const {
  if (options_.writeback == TieredOptions::Writeback::kLegacyLocked) {
    StorageBackend::ReadChunks(requests, done);  // pre-redesign baseline stays serial
    return;
  }
  struct Miss {
    ChunkReadRequest* req;
    uint64_t read_gen;  // write generation the unlocked cold read will serve
  };
  std::vector<std::vector<ChunkReadRequest*>> by_shard(shards_.size());
  for (ChunkReadRequest& req : requests) {
    req.result = -1;
    by_shard[ShardOf(req.key.context_id)].push_back(&req);
  }
  // Phase 1 — per shard, under that shard's lock: serve hot hits and drain-queue
  // rescues (ReadChunk's exact rules: short buffers fail with no side effects, a
  // rescue re-admits only into FREE space) and snapshot each miss's generation.
  std::vector<std::vector<Miss>> miss_by_shard(shards_.size());
  size_t num_misses = 0;
  bool rescued_pending = false;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) {
      continue;
    }
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (ChunkReadRequest* req : by_shard[s]) {
      const ChunkKey& key = req->key;
      const auto hot_it = shard.hot.find(key);
      if (hot_it != shard.hot.end()) {
        const int64_t size = static_cast<int64_t>(hot_it->second.data.size());
        if (size > req->buf_bytes) {
          continue;
        }
        std::memcpy(req->buf, hot_it->second.data.data(), static_cast<size_t>(size));
        TouchLocked(shard, key.context_id);
        ++total_reads_;
        ++dram_hits_;
        dram_hit_bytes_ += size;
        req->result = size;
        continue;
      }
      const auto pit = shard.pending.find(key);
      if (pit != shard.pending.end()) {
        const std::shared_ptr<const std::vector<char>> data = pit->second.data;
        const int64_t size = static_cast<int64_t>(data->size());
        if (size > req->buf_bytes) {
          continue;
        }
        std::memcpy(req->buf, data->data(), static_cast<size_t>(size));
        ++total_reads_;
        ++dram_hits_;
        dram_hit_bytes_ += size;
        ++drain_rescued_chunks_;
        if (size <= shard.capacity - shard.hot_bytes) {
          pending_bytes_ -= size;
          shard.pending.erase(pit);
          rescued_pending = true;
          InsertHotLocked(shard, key, data->data(), size, /*dirty=*/true);
          TouchLocked(shard, key.context_id);
        }
        req->result = size;
        continue;
      }
      const auto iit = shard.index.find(key);
      if (iit == shard.index.end() || iit->second.size > req->buf_bytes) {
        continue;  // absent or short buffer: no IO, no stats, no side effects
      }
      miss_by_shard[s].push_back(Miss{req, iit->second.gen});
      ++num_misses;
    }
  }
  if (rescued_pending) {
    SignalDrainProgress();
  }
  if (num_misses > 0) {
    // Phase 2 — every shard lock released: ONE batched cold round trip for all
    // misses, reading straight into the callers' buffers.
    std::vector<ChunkReadRequest> cold_reqs;
    cold_reqs.reserve(num_misses);
    for (const auto& misses : miss_by_shard) {
      for (const Miss& m : misses) {
        cold_reqs.push_back(ChunkReadRequest{m.req->key, m.req->buf, m.req->buf_bytes,
                                             /*result=*/-1});
      }
    }
    cold_->ReadChunks(cold_reqs);
    // Phase 3 — per shard, under the lock again: stats + gen-checked clean
    // promotion (a concurrent write or delete invalidates the snapshot), one
    // eviction pass per shard, tickets dispatched after release.
    std::vector<DrainTicket> tickets;
    size_t j = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (miss_by_shard[s].empty()) {
        continue;
      }
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const Miss& m : miss_by_shard[s]) {
        const int64_t got = cold_reqs[j++].result;
        if (got == kChunkCorrupt) {
          m.req->result = kChunkCorrupt;  // detected-corrupt is NOT a miss
          ++crc_failures_;
          continue;
        }
        if (got < 0) {
          continue;  // vanished from the cold tier too (deleted mid-flight)
        }
        ++total_reads_;
        ++cold_hits_;
        cold_hit_bytes_ += got;
        m.req->result = got;
        const auto iit = shard.index.find(m.req->key);
        const bool current = iit != shard.index.end() && iit->second.gen == m.read_gen;
        const bool displaced =
            shard.hot.count(m.req->key) != 0 || shard.pending.count(m.req->key) != 0;
        if (current && !displaced) {
          if (got <= shard.capacity) {
            InsertHotLocked(shard, m.req->key, static_cast<const char*>(m.req->buf),
                            got, /*dirty=*/false);
            TouchLocked(shard, m.req->key.context_id);
          } else {
            ++promotions_skipped_;
          }
        }
      }
      EvictToBudgetLocked(shard, &tickets);
    }
    DispatchTickets(std::move(tickets));
  }
  if (done) {
    done();
  }
}

bool TieredBackend::HasChunk(const ChunkKey& key) const {
  Shard& shard = *shards_[ShardOf(key.context_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.index.count(key) != 0;
}

int64_t TieredBackend::ChunkSize(const ChunkKey& key) const {
  Shard& shard = *shards_[ShardOf(key.context_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  return it == shard.index.end() ? -1 : it->second.size;
}

void TieredBackend::DeleteContext(int64_t context_id) {
  Shard& shard = *shards_[ShardOf(context_id)];
  bool cancelled_pending = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.hot.lower_bound(ChunkKey{context_id, 0, 0});
         it != shard.hot.end() && it->first.context_id == context_id;) {
      shard.hot_bytes -= static_cast<int64_t>(it->second.data.size());
      it = shard.hot.erase(it);
    }
    for (auto it = shard.pending.lower_bound(ChunkKey{context_id, 0, 0});
         it != shard.pending.end() && it->first.context_id == context_id;) {
      pending_bytes_ -= static_cast<int64_t>(it->second.data->size());
      it = shard.pending.erase(it);
      cancelled_pending = true;
    }
    const auto ctx_it = shard.contexts.find(context_id);
    if (ctx_it != shard.contexts.end()) {
      shard.lru.erase(ctx_it->second.lru_pos);
      shard.contexts.erase(ctx_it);
    }
    for (auto it = shard.index.lower_bound(ChunkKey{context_id, 0, 0});
         it != shard.index.end() && it->first.context_id == context_id;) {
      shard.bytes_stored -= it->second.size;
      it = shard.index.erase(it);
    }
  }
  if (cancelled_pending) {
    SignalDrainProgress();
  }
  if (options_.writeback == TieredOptions::Writeback::kAsync) {
    // An in-flight write-back of this context could re-materialize a chunk in the
    // cold tier after our delete; wait it out (queued tickets are already inert —
    // their pending entries are gone).
    std::unique_lock<std::mutex> lock(drain_mu_);
    drained_cv_.wait(lock, [this, context_id] {
      return inflight_context_ != context_id;
    });
  }
  cold_->DeleteContext(context_id);
}

std::vector<std::pair<ChunkKey, int64_t>> TieredBackend::ListChunks() const {
  std::vector<std::pair<ChunkKey, int64_t>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->index) {
      out.emplace_back(key, entry.size);
    }
  }
  return out;
}

int64_t TieredBackend::ReadChunkUnverified(const ChunkKey& key, void* buf,
                                           int64_t buf_bytes) const {
  const int64_t got = ReadChunk(key, buf, buf_bytes);
  if (got != kChunkCorrupt) {
    return got;  // DRAM hits are trusted; a verified cold hit is already vetted
  }
  return cold_->ReadChunkUnverified(key, buf, buf_bytes);
}

bool TieredBackend::DeleteChunk(const ChunkKey& key) {
  Shard& shard = *shards_[ShardOf(key.context_id)];
  bool cancelled_pending = false;
  bool was_indexed = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto hot_it = shard.hot.find(key);
    if (hot_it != shard.hot.end()) {
      shard.hot_bytes -= static_cast<int64_t>(hot_it->second.data.size());
      shard.hot.erase(hot_it);
    }
    const auto pit = shard.pending.find(key);
    if (pit != shard.pending.end()) {
      pending_bytes_ -= static_cast<int64_t>(pit->second.data->size());
      shard.pending.erase(pit);
      cancelled_pending = true;
    }
    const auto iit = shard.index.find(key);
    if (iit != shard.index.end()) {
      shard.bytes_stored -= iit->second.size;
      shard.index.erase(iit);
      was_indexed = true;
    }
  }
  if (cancelled_pending) {
    SignalDrainProgress();
  }
  if (options_.writeback == TieredOptions::Writeback::kAsync) {
    // An in-flight write-back of this context could re-materialize the chunk in the
    // cold tier after our delete; wait it out (same rule as DeleteContext).
    std::unique_lock<std::mutex> lock(drain_mu_);
    drained_cv_.wait(lock, [this, &key] { return inflight_context_ != key.context_id; });
  }
  const bool cold_deleted = cold_->DeleteChunk(key);
  return was_indexed || cold_deleted;
}

int64_t TieredBackend::dram_bytes() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->hot_bytes;
  }
  return total;
}

bool TieredBackend::IsDramResident(const ChunkKey& key) const {
  Shard& shard = *shards_[ShardOf(key.context_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.hot.count(key) != 0;
}

bool TieredBackend::IsDrainPending(const ChunkKey& key) const {
  Shard& shard = *shards_[ShardOf(key.context_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.pending.count(key) != 0;
}

StorageStats TieredBackend::Stats() const {
  StorageStats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.chunks_stored += static_cast<int64_t>(shard->index.size());
    s.bytes_stored += shard->bytes_stored;
  }
  s.total_writes = total_writes_.load();
  s.total_reads = total_reads_.load();
  s.dram_hits = dram_hits_.load();
  s.cold_hits = cold_hits_.load();
  s.dram_hit_bytes = dram_hit_bytes_.load();
  s.cold_hit_bytes = cold_hit_bytes_.load();
  s.evicted_contexts = evicted_contexts_.load();
  s.writeback_chunks = writeback_chunks_.load();
  s.writeback_bytes = writeback_bytes_.load();
  s.drain_pending_bytes = pending_bytes_.load();
  s.drain_rescued_chunks = drain_rescued_chunks_.load();
  s.writer_stalls = writer_stalls_.load();
  s.writeback_failures = writeback_failures_.load();
  s.promotions_skipped = promotions_skipped_.load();
  s.writeback_retries = writeback_retries_.load();
  // This tier's crc_failures_ counts the cold rejections it propagated (DRAM bytes
  // are trusted); the cold backend is where payloads are actually CRC-checked, so
  // surface its verified-byte figure as the stack's.
  s.crc_failures = crc_failures_.load();
  const StorageStats cold = cold_->Stats();
  s.crc_checked_bytes = cold.crc_checked_bytes;
  // Same pattern for the dedup plane: when the cold tier is content-addressed its
  // sharing figures are the stack's.
  s.dedup_hits = cold.dedup_hits;
  s.dedup_bytes_saved = cold.dedup_bytes_saved;
  s.unique_chunks = cold.unique_chunks;
  return s;
}

}  // namespace hcache
