#include "src/storage/tiered_backend.h"

#include <cstring>

#include "src/common/logging.h"

namespace hcache {

TieredBackend::TieredBackend(StorageBackend* cold, int64_t dram_capacity_bytes)
    : StorageBackend(cold->chunk_bytes()),
      cold_(cold),
      dram_capacity_bytes_(dram_capacity_bytes) {
  CHECK(cold != nullptr);
  CHECK_GE(dram_capacity_bytes_, 0);
}

void TieredBackend::TouchLocked(int64_t context_id) const {
  auto it = contexts_.find(context_id);
  if (it == contexts_.end()) {
    lru_.push_back(context_id);
    contexts_[context_id] = ContextLru{std::prev(lru_.end())};
  } else {
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
  }
}

void TieredBackend::InsertHotLocked(const ChunkKey& key, const char* data, int64_t bytes,
                                    bool dirty) const {
  auto& chunk = hot_[key];
  const int64_t delta = bytes - static_cast<int64_t>(chunk.data.size());
  chunk.data.assign(data, data + bytes);
  chunk.dirty = dirty;
  dram_bytes_ += delta;
}

void TieredBackend::EvictToBudgetLocked() const {
  while (dram_bytes_ > dram_capacity_bytes_ && !lru_.empty()) {
    const int64_t victim = lru_.front();
    // Write-back: flush the victim's dirty chunks to the cold tier, then drop all of
    // its hot-tier copies.
    auto it = hot_.lower_bound(ChunkKey{victim, 0, 0});
    while (it != hot_.end() && it->first.context_id == victim) {
      if (it->second.dirty) {
        const int64_t bytes = static_cast<int64_t>(it->second.data.size());
        if (!cold_->WriteChunk(it->first, it->second.data.data(), bytes)) {
          // Never drop a dirty chunk the cold tier refused: keep the victim resident
          // (requeued at the MRU end so other contexts get evicted first) and stop
          // this round. The capacity budget degrades to best-effort rather than the
          // backend losing data or wedging on one failing context.
          HCACHE_LOG_ERROR << "tiered write-back failed: ctx=" << it->first.context_id
                           << " L=" << it->first.layer << " C=" << it->first.chunk_index
                           << "; keeping context in DRAM";
          lru_.splice(lru_.end(), lru_, contexts_.at(victim).lru_pos);
          return;
        }
        ++writeback_chunks_;
        writeback_bytes_ += bytes;
      }
      dram_bytes_ -= static_cast<int64_t>(it->second.data.size());
      it = hot_.erase(it);
    }
    lru_.pop_front();
    contexts_.erase(victim);
    ++evicted_contexts_;
  }
}

bool TieredBackend::WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, chunk_bytes());
  std::lock_guard<std::mutex> lock(mu_);
  TouchLocked(key.context_id);
  InsertHotLocked(key, static_cast<const char*>(data), bytes, /*dirty=*/true);
  auto& indexed = index_[key];
  bytes_stored_ += bytes - indexed;
  indexed = bytes;
  ++total_writes_;
  // The chunk is durably in the hot tier at this point; a write-back failure while
  // rebalancing concerns *other* contexts and must not fail this write.
  EvictToBudgetLocked();
  return true;
}

int64_t TieredBackend::ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto hot_it = hot_.find(key);
  if (hot_it != hot_.end()) {
    const int64_t size = static_cast<int64_t>(hot_it->second.data.size());
    if (size > buf_bytes) {
      return -1;
    }
    std::memcpy(buf, hot_it->second.data.data(), static_cast<size_t>(size));
    TouchLocked(key.context_id);
    ++total_reads_;
    ++dram_hits_;
    dram_hit_bytes_ += size;
    return size;
  }
  const int64_t got = cold_->ReadChunk(key, buf, buf_bytes);
  if (got < 0) {
    return got;
  }
  ++total_reads_;
  ++cold_hits_;
  cold_hit_bytes_ += got;
  // Promote: a restored context is likely to be restored again soon (the §6.2.1
  // caching argument); admit the chunk clean so re-eviction is free.
  TouchLocked(key.context_id);
  InsertHotLocked(key, static_cast<const char*>(buf), got, /*dirty=*/false);
  EvictToBudgetLocked();
  return got;
}

bool TieredBackend::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

int64_t TieredBackend::ChunkSize(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  return it == index_.end() ? -1 : it->second;
}

void TieredBackend::DeleteContext(int64_t context_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = hot_.lower_bound(ChunkKey{context_id, 0, 0});
       it != hot_.end() && it->first.context_id == context_id;) {
    dram_bytes_ -= static_cast<int64_t>(it->second.data.size());
    it = hot_.erase(it);
  }
  const auto ctx_it = contexts_.find(context_id);
  if (ctx_it != contexts_.end()) {
    lru_.erase(ctx_it->second.lru_pos);
    contexts_.erase(ctx_it);
  }
  for (auto it = index_.lower_bound(ChunkKey{context_id, 0, 0});
       it != index_.end() && it->first.context_id == context_id;) {
    bytes_stored_ -= it->second;
    it = index_.erase(it);
  }
  cold_->DeleteContext(context_id);
}

int64_t TieredBackend::dram_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dram_bytes_;
}

bool TieredBackend::IsDramResident(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hot_.count(key) != 0;
}

StorageStats TieredBackend::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StorageStats s;
  s.chunks_stored = static_cast<int64_t>(index_.size());
  s.bytes_stored = bytes_stored_;
  s.total_writes = total_writes_;
  s.total_reads = total_reads_;
  s.dram_hits = dram_hits_;
  s.cold_hits = cold_hits_;
  s.dram_hit_bytes = dram_hit_bytes_;
  s.cold_hit_bytes = cold_hit_bytes_;
  s.evicted_contexts = evicted_contexts_;
  s.writeback_chunks = writeback_chunks_;
  s.writeback_bytes = writeback_bytes_;
  return s;
}

}  // namespace hcache
