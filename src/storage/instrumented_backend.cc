#include "src/storage/instrumented_backend.h"

#include <chrono>
#include <thread>

#include "src/common/logging.h"

namespace hcache {

InstrumentedBackend::InstrumentedBackend(StorageBackend* inner)
    : StorageBackend(inner->chunk_bytes()), inner_(inner) {
  CHECK(inner != nullptr);
}

void InstrumentedBackend::InjectLatency() const {
  const int64_t micros = io_latency_micros_.load(std::memory_order_relaxed);
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

bool InstrumentedBackend::WriteChunk(const ChunkKey& key, const void* data,
                                     int64_t bytes) {
  InjectLatency();
  if (write_hook_) {
    write_hook_(key);
  }
  // Decrement-and-test so concurrent writers consume exactly `n` failures.
  if (fail_writes_.load(std::memory_order_relaxed) > 0 &&
      fail_writes_.fetch_sub(1, std::memory_order_relaxed) > 0) {
    ++injected_write_failures_;
    return false;
  }
  return inner_->WriteChunk(key, data, bytes);
}

int64_t InstrumentedBackend::ReadChunk(const ChunkKey& key, void* buf,
                                       int64_t buf_bytes) const {
  InjectLatency();
  if (read_hook_) {
    read_hook_(key);
  }
  return inner_->ReadChunk(key, buf, buf_bytes);
}

bool InstrumentedBackend::HasChunk(const ChunkKey& key) const {
  return inner_->HasChunk(key);
}

int64_t InstrumentedBackend::ChunkSize(const ChunkKey& key) const {
  return inner_->ChunkSize(key);
}

void InstrumentedBackend::DeleteContext(int64_t context_id) {
  inner_->DeleteContext(context_id);
}

StorageStats InstrumentedBackend::Stats() const { return inner_->Stats(); }

}  // namespace hcache
