#include "src/storage/instrumented_backend.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/logging.h"

namespace hcache {

InstrumentedBackend::InstrumentedBackend(StorageBackend* inner)
    : StorageBackend(inner->chunk_bytes()), inner_(inner) {
  CHECK(inner != nullptr);
}

int64_t InstrumentedBackend::JitteredLatencyMicros(int64_t mean_micros,
                                                   int64_t jitter_micros,
                                                   uint64_t seed, uint64_t draw) {
  if (jitter_micros <= 0) {
    return std::max<int64_t>(0, mean_micros);
  }
  // splitmix64 over (seed, draw): stateless, so any thread interleaving samples the
  // same multiset of latencies — the draw *counter* orders draws, not the clock.
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (draw + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const int64_t span = 2 * jitter_micros + 1;  // uniform over [-jitter, +jitter]
  const int64_t offset = static_cast<int64_t>(x % static_cast<uint64_t>(span)) - jitter_micros;
  return std::max<int64_t>(0, mean_micros + offset);
}

void InstrumentedBackend::InjectLatency() const {
  const int64_t mean = io_latency_micros_.load(std::memory_order_relaxed);
  const int64_t jitter = io_jitter_micros_.load(std::memory_order_relaxed);
  if (mean <= 0 && jitter <= 0) {
    return;
  }
  const int64_t micros =
      JitteredLatencyMicros(mean, jitter, jitter_seed_.load(std::memory_order_relaxed),
                            jitter_draws_.fetch_add(1, std::memory_order_relaxed));
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

bool InstrumentedBackend::WriteChunk(const ChunkKey& key, const void* data,
                                     int64_t bytes) {
  InjectLatency();
  if (write_hook_) {
    write_hook_(key);
  }
  // Decrement-and-test so concurrent writers consume exactly `n` failures.
  if (fail_writes_.load(std::memory_order_relaxed) > 0 &&
      fail_writes_.fetch_sub(1, std::memory_order_relaxed) > 0) {
    ++injected_write_failures_;
    return false;
  }
  return inner_->WriteChunk(key, data, bytes);
}

int64_t InstrumentedBackend::ReadChunk(const ChunkKey& key, void* buf,
                                       int64_t buf_bytes) const {
  InjectLatency();
  if (read_hook_) {
    read_hook_(key);
  }
  return inner_->ReadChunk(key, buf, buf_bytes);
}

void InstrumentedBackend::ReadChunks(std::span<ChunkReadRequest> requests,
                                     const BatchCompletion& done) const {
  read_batches_.fetch_add(1, std::memory_order_relaxed);
  InjectLatency();  // once per batch: a batched submission is one device round trip
  if (read_hook_) {
    for (const ChunkReadRequest& req : requests) {
      read_hook_(req.key);
    }
  }
  inner_->ReadChunks(requests, done);
}

bool InstrumentedBackend::WriteChunks(std::span<ChunkWriteRequest> requests,
                                      const BatchCompletion& done) {
  write_batches_.fetch_add(1, std::memory_order_relaxed);
  InjectLatency();
  bool all_ok = true;
  std::vector<ChunkWriteRequest> forwarded;
  std::vector<size_t> forwarded_index;
  forwarded.reserve(requests.size());
  forwarded_index.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ChunkWriteRequest& req = requests[i];
    if (write_hook_) {
      write_hook_(req.key);
    }
    // Same decrement-and-test as the serial path: each injected failure is consumed
    // by exactly one request, which fails without ever reaching `inner`.
    if (fail_writes_.load(std::memory_order_relaxed) > 0 &&
        fail_writes_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      ++injected_write_failures_;
      req.ok = false;
      all_ok = false;
      continue;
    }
    forwarded.push_back(req);
    forwarded_index.push_back(i);
  }
  if (!forwarded.empty()) {
    all_ok &= inner_->WriteChunks(forwarded);
    for (size_t j = 0; j < forwarded.size(); ++j) {
      requests[forwarded_index[j]].ok = forwarded[j].ok;
    }
  }
  if (done) {
    done();
  }
  return all_ok;
}

bool InstrumentedBackend::CorruptChunk(const ChunkKey& key, int64_t bit_offset) {
  const int64_t size = inner_->ChunkSize(key);
  if (size <= 0) {
    return false;
  }
  std::vector<char> bytes(static_cast<size_t>(size));
  // Unverified readback: the chunk may already be corrupt from a previous
  // injection, and the point is to mutate whatever is at rest.
  if (inner_->ReadChunkUnverified(key, bytes.data(), size) != size) {
    return false;
  }
  if (bit_offset < 0) {
    bit_offset = 0;
  }
  if (bit_offset >= 8 * size) {
    bit_offset = 8 * size - 1;
  }
  bytes[static_cast<size_t>(bit_offset / 8)] ^=
      static_cast<char>(1u << (bit_offset % 8));
  return inner_->WriteChunk(key, bytes.data(), size);
}

bool InstrumentedBackend::TruncateChunk(const ChunkKey& key, int64_t new_bytes) {
  const int64_t size = inner_->ChunkSize(key);
  if (size <= 0 || new_bytes <= 0 || new_bytes >= size) {
    return false;
  }
  std::vector<char> full(static_cast<size_t>(size));
  if (inner_->ReadChunkUnverified(key, full.data(), size) != size) {
    return false;
  }
  return inner_->WriteChunk(key, full.data(), new_bytes);
}

bool InstrumentedBackend::HasChunk(const ChunkKey& key) const {
  return inner_->HasChunk(key);
}

int64_t InstrumentedBackend::ChunkSize(const ChunkKey& key) const {
  return inner_->ChunkSize(key);
}

void InstrumentedBackend::DeleteContext(int64_t context_id) {
  inner_->DeleteContext(context_id);
}

StorageStats InstrumentedBackend::Stats() const { return inner_->Stats(); }

}  // namespace hcache
