// Two-stage hidden-state saving (paper §4.2.2) and its readback path.
//
// Stage 1 — snapshot: when a layer produces hidden states, its rows are *encoded* into
// a host-side staging buffer (the model for the single cudaMemcpy that "snapshots the
// hidden states to the host, allowing the GPU memory buffer to be properly reused").
// The precision codec runs here, fused into the snapshot copy: a sealed chunk is
// already in its on-storage encoding, so flushing never makes a second pass over the
// data. This runs synchronously on the compute thread and is cheap.
//
// Stage 2 — chunk management: a background pool (the paper uses 8 host threads)
// flushes sealed chunks to the StorageBackend (file, DRAM, or tiered). Generation
// never blocks on storage, and the steady-state path never allocates: sealed chunks
// are handed off by swapping the staging buffer with a pooled payload buffer that
// returns to the pool when the write completes.
//
// `HiddenStateWriter` is the per-sequence sink; `DirectHiddenWriter` is the Fig 14
// ablation variant that performs storage writes synchronously inside OnLayerInput.
#ifndef HCACHE_SRC_STORAGE_HIDDEN_SAVER_H_
#define HCACHE_SRC_STORAGE_HIDDEN_SAVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/model/transformer.h"
#include "src/storage/codec.h"
#include "src/storage/layout.h"
#include "src/storage/storage_backend.h"

namespace hcache {

class HiddenStateWriter : public HiddenStateSink {
 public:
  // `flush_pool` may be null, in which case sealed chunks flush synchronously (still
  // chunk-granular — the distinction DirectHiddenWriter ablates is *row*-granular
  // synchronous writes). `codec` selects the stored precision; kFp32 round-trips
  // bit-exactly (the functional default), kFp16/kInt8 trade bounded error for bytes.
  HiddenStateWriter(StorageBackend* store, ThreadPool* flush_pool, const ModelConfig& cfg,
                    int64_t context_id, int64_t chunk_tokens = kDefaultChunkTokens,
                    ChunkCodec codec = ChunkCodec::kFp32);
  ~HiddenStateWriter() override;

  // Stage 1. Tokens must arrive append-only and contiguously per layer.
  void OnLayerInput(int64_t layer, const Tensor& hidden, const int32_t* positions,
                    int64_t n) override;

  // Flushes every partially filled chunk (so the full history is durable) and waits
  // for in-flight flushes. Call at the end of a generation round, before the context's
  // state may be restored. Capture may RESUME afterwards — a multi-round conversation
  // seals at each round boundary; when a partial chunk later fills up it is simply
  // rewritten in place, keeping the chunk/token mapping uniform for the reader.
  void Seal();

  int64_t tokens_saved() const;
  int64_t context_id() const { return context_id_; }
  ChunkCodec codec() const { return codec_; }

  // Encoded bytes handed to the backend and their FP32-equivalent size — the storage
  // plane's compression accounting.
  int64_t encoded_bytes_written() const;
  int64_t logical_bytes_written() const;

  // Number of flush payload buffers ever allocated. Bounded by the flush pipeline's
  // depth, NOT by the chunk count: the steady-state save path recycles buffers and
  // performs no allocation (asserted by tests/storage/codec_storage_test.cc).
  int64_t payload_buffer_allocations() const;

 private:
  struct LayerBuffer {
    std::vector<uint8_t> staging;  // ChunkHeader + chunk_tokens * row stride, encoded
    int64_t fill_tokens = 0;       // rows currently staged
    int64_t open_chunk = 0;        // chunk index the staging buffer maps to
    int64_t tokens_seen = 0;       // append-only position check
    bool dirty = false;            // staged rows not yet flushed (Seal is idempotent)
  };

  // Writes the staging buffer's current rows as chunk `open_chunk`. When the buffer is
  // full the chunk advances and the buffer is swapped with a pooled payload buffer; a
  // partial flush (from Seal) copies instead, keeping the staged rows so the chunk can
  // be rewritten once it fills.
  void FlushChunk(int64_t layer, LayerBuffer& buf);

  std::shared_ptr<std::vector<uint8_t>> AcquirePayload();
  void ReleasePayload(std::shared_ptr<std::vector<uint8_t>> buf);

  StorageBackend* store_;
  ThreadPool* flush_pool_;
  ModelConfig cfg_;
  int64_t context_id_;
  int64_t chunk_tokens_;
  ChunkCodec codec_;
  int64_t row_stride_;    // encoded bytes per staged row
  int64_t staging_bytes_;  // header + chunk_tokens * row_stride
  std::vector<LayerBuffer> layers_;

  // Recycled flush payloads (all sized staging_bytes_). Background flush tasks return
  // their buffer here; Seal() drains the pool's tasks before the writer dies, so the
  // tasks' reference to the writer never dangles.
  mutable std::mutex payload_mu_;
  std::vector<std::shared_ptr<std::vector<uint8_t>>> payload_pool_;
  int64_t payload_allocations_ = 0;

  mutable std::mutex stats_mu_;
  int64_t encoded_bytes_written_ = 0;
  int64_t logical_bytes_written_ = 0;
};

// Ablation: byte-for-byte the same data, but every OnLayerInput call writes its rows
// straight to the store (the "DirectIO" baseline of Fig 14 — small synchronous writes
// on the critical path).
class DirectHiddenWriter : public HiddenStateSink {
 public:
  DirectHiddenWriter(StorageBackend* store, const ModelConfig& cfg, int64_t context_id,
                     int64_t chunk_tokens = kDefaultChunkTokens,
                     ChunkCodec codec = ChunkCodec::kFp32);

  void OnLayerInput(int64_t layer, const Tensor& hidden, const int32_t* positions,
                    int64_t n) override;
  void Seal();

  int64_t synchronous_writes() const { return synchronous_writes_; }

 private:
  // Delegates data handling to a synchronous writer but counts the row-granular writes
  // the real system would issue.
  HiddenStateWriter inner_;
  int64_t synchronous_writes_ = 0;
};

// Reassembles a layer's hidden states from chunks, in token order — the
// token-before-layer read path of Fig 6b. Chunks are self-describing, so one reader
// handles any mix of codecs (and legacy headerless FP32 chunks) within a context.
class HiddenStateReader {
 public:
  // `verify` selects the batched read flavor ReadLayerInto submits: true (the
  // production default) funnels every chunk through CRC verification; false reads
  // raw bytes (ReadChunksUnverified) — for trusted-memory deployments that opt out
  // and for the bench row that measures exactly what verification costs, since the
  // two flavors share every other instruction of the restore path.
  HiddenStateReader(const StorageBackend* store, const ModelConfig& cfg,
                    int64_t chunk_tokens = kDefaultChunkTokens, bool verify = true);

  // Reads tokens [0, n) of `layer`. CHECK-fails if chunks are missing, short, or
  // corrupt — use only where absence is a programming error (tests, benches).
  Tensor ReadLayer(int64_t context_id, int64_t layer, int64_t n) const;

  // Same, but decodes straight into `dst` ([n, hidden_dim] row-major floats) — the
  // fused path: dequantization writes the projection GEMM's input buffer directly,
  // with no intermediate FP32 chunk staging. Returns false (logging the failing
  // chunk) when any covering chunk is missing, short, or detected corrupt; `dst`
  // contents are then unspecified and the caller falls back to recomputation.
  bool ReadLayerInto(int64_t context_id, int64_t layer, int64_t n, float* dst) const;

  // True when every chunk covering tokens [0, n) of every layer exists. `expected` is
  // the codec this context's writer is configured with (legacy headerless FP32 chunks
  // are always additionally accepted); pinning it keeps a partially saved chunk from
  // size-aliasing to a complete chunk of a different codec.
  bool ContextComplete(int64_t context_id, int64_t n,
                       ChunkCodec expected = ChunkCodec::kFp32) const;

  // True when every chunk covering tokens [0, n) of ONE layer exists (mixed partition
  // schemes only need a subset of layers).
  bool LayerComplete(int64_t context_id, int64_t layer, int64_t n,
                     ChunkCodec expected = ChunkCodec::kFp32) const;

 private:
  const StorageBackend* store_;
  ModelConfig cfg_;
  int64_t chunk_tokens_;
  bool verify_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_HIDDEN_SAVER_H_
