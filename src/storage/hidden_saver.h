// Two-stage hidden-state saving (paper §4.2.2) and its readback path.
//
// Stage 1 — snapshot: when a layer produces hidden states, its rows are memcpy'd into
// a host-side staging buffer (the model for the single cudaMemcpy that "snapshots the
// hidden states to the host, allowing the GPU memory buffer to be properly reused").
// This runs synchronously on the compute thread and is cheap.
//
// Stage 2 — chunk management: a background pool (the paper uses 8 host threads)
// assembles staged rows into 64-token chunks and flushes sealed chunks to the
// StorageBackend (file, DRAM, or tiered). Generation never blocks on storage.
//
// `HiddenStateWriter` is the per-sequence sink; `DirectHiddenWriter` is the Fig 14
// ablation variant that performs storage writes synchronously inside OnLayerInput.
#ifndef HCACHE_SRC_STORAGE_HIDDEN_SAVER_H_
#define HCACHE_SRC_STORAGE_HIDDEN_SAVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/model/transformer.h"
#include "src/storage/layout.h"
#include "src/storage/storage_backend.h"

namespace hcache {

class HiddenStateWriter : public HiddenStateSink {
 public:
  // `flush_pool` may be null, in which case sealed chunks flush synchronously (still
  // chunk-granular — the distinction DirectHiddenWriter ablates is *row*-granular
  // synchronous writes).
  HiddenStateWriter(StorageBackend* store, ThreadPool* flush_pool, const ModelConfig& cfg,
                    int64_t context_id, int64_t chunk_tokens = kDefaultChunkTokens);
  ~HiddenStateWriter() override;

  // Stage 1. Tokens must arrive append-only and contiguously per layer.
  void OnLayerInput(int64_t layer, const Tensor& hidden, const int32_t* positions,
                    int64_t n) override;

  // Flushes every partially filled chunk (so the full history is durable) and waits
  // for in-flight flushes. Call at the end of a generation round, before the context's
  // state may be restored. Capture may RESUME afterwards — a multi-round conversation
  // seals at each round boundary; when a partial chunk later fills up it is simply
  // rewritten in place, keeping the chunk/token mapping uniform for the reader.
  void Seal();

  int64_t tokens_saved() const;
  int64_t context_id() const { return context_id_; }

 private:
  struct LayerBuffer {
    std::vector<float> staging;  // chunk_tokens * hidden_dim floats
    int64_t fill_tokens = 0;     // rows currently staged
    int64_t open_chunk = 0;      // chunk index the staging buffer maps to
    int64_t tokens_seen = 0;     // append-only position check
    bool dirty = false;          // staged rows not yet flushed (Seal is idempotent)
  };

  // Writes the staging buffer's current rows as chunk `open_chunk`. When the buffer is
  // full the chunk advances and the buffer resets; a partial flush (from Seal) keeps
  // the buffer so the chunk can be rewritten once it fills.
  void FlushChunk(int64_t layer, LayerBuffer& buf);

  StorageBackend* store_;
  ThreadPool* flush_pool_;
  ModelConfig cfg_;
  int64_t context_id_;
  int64_t chunk_tokens_;
  std::vector<LayerBuffer> layers_;
};

// Ablation: byte-for-byte the same data, but every OnLayerInput call writes its rows
// straight to the store (the "DirectIO" baseline of Fig 14 — small synchronous writes
// on the critical path).
class DirectHiddenWriter : public HiddenStateSink {
 public:
  DirectHiddenWriter(StorageBackend* store, const ModelConfig& cfg, int64_t context_id,
                     int64_t chunk_tokens = kDefaultChunkTokens);

  void OnLayerInput(int64_t layer, const Tensor& hidden, const int32_t* positions,
                    int64_t n) override;
  void Seal();

  int64_t synchronous_writes() const { return synchronous_writes_; }

 private:
  // Delegates data handling to a synchronous writer but counts the row-granular writes
  // the real system would issue.
  HiddenStateWriter inner_;
  int64_t synchronous_writes_ = 0;
};

// Reassembles a layer's hidden states from chunks, in token order — the
// token-before-layer read path of Fig 6b.
class HiddenStateReader {
 public:
  HiddenStateReader(const StorageBackend* store, const ModelConfig& cfg,
                    int64_t chunk_tokens = kDefaultChunkTokens);

  // Reads tokens [0, n) of `layer`. CHECK-fails if chunks are missing or short.
  Tensor ReadLayer(int64_t context_id, int64_t layer, int64_t n) const;

  // True when every chunk covering tokens [0, n) of every layer exists.
  bool ContextComplete(int64_t context_id, int64_t n) const;

  // True when every chunk covering tokens [0, n) of ONE layer exists (mixed partition
  // schemes only need a subset of layers).
  bool LayerComplete(int64_t context_id, int64_t layer, int64_t n) const;

 private:
  const StorageBackend* store_;
  ModelConfig cfg_;
  int64_t chunk_tokens_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_HIDDEN_SAVER_H_
