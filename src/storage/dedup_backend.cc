#include "src/storage/dedup_backend.h"

#include <cstring>
#include <utility>

#include "src/common/logging.h"
#include "src/storage/codec_simd.h"

namespace hcache {

namespace {

// splitmix64 finalizer — full-avalanche 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// One 64-bit multiply-mix lane over the payload: 8-byte little-endian words through
// a seeded multiply-xorshift accumulator, scalar tail folded in by byte. Two lanes
// with independent seeds give 128 effectively independent bits on non-adversarial
// data (and verify_bytes covers the adversarial case).
uint64_t HashLane(const uint8_t* p, int64_t n, uint64_t seed) {
  uint64_t h = Mix64(seed ^ static_cast<uint64_t>(n));
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, sizeof(w));
    h = Mix64(h ^ w);
  }
  uint64_t tail = 0;
  for (int64_t j = i; j < n; ++j) {
    tail = (tail << 8) | p[j];
  }
  return Mix64(h ^ tail);
}

}  // namespace

ContentHash HashChunkContent(const void* data, int64_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  // The CRC rides the SIMD dispatch tiers (crc32q on SSE4.2+, table fallback) and
  // contributes 32 bits the multiply lanes cannot produce (different algebra).
  const uint32_t crc = Crc32c(data, bytes);
  ContentHash h;
  h.hi = HashLane(p, bytes, 0xa5b35705c91f3e41ull) ^ (static_cast<uint64_t>(crc) << 32);
  h.lo = HashLane(p, bytes, 0x27d4eb2f165667c5ull) ^ static_cast<uint64_t>(bytes);
  return h;
}

ChunkKey DedupBackend::PhysicalKey(const PhysId& id) {
  // The wrapped backend's whole key namespace is ours; spread the 128 hash bits over
  // (context_id, layer) and keep the collision-chain slot in chunk_index. The sign
  // bit is masked off both fields — file-backed stores turn context ids into
  // directory names and negative ids would be needlessly ugly there.
  return ChunkKey{static_cast<int64_t>(id.hash.hi & 0x7fffffffffffffffull),
                  static_cast<int64_t>(id.hash.lo & 0x7fffffffffffffffull), id.chain};
}

DedupBackend::DedupBackend(StorageBackend* base, const DedupOptions& options)
    : StorageBackend(base->chunk_bytes()), base_(base), options_(options) {
  CHECK(base != nullptr);
}

DedupBackend::~DedupBackend() = default;

void DedupBackend::MaybeDeletePhysicalLocked(std::unique_lock<std::mutex>& lock,
                                             const PhysId& id) {
  auto it = phys_.find(id);
  if (it == phys_.end() || it->second.refs > 0 || it->second.pins > 0 ||
      it->second.state != PhysState::kReady) {
    return;
  }
  it->second.state = PhysState::kDeleting;
  const int64_t bytes = it->second.bytes;
  const ChunkKey pkey = PhysicalKey(id);
  lock.unlock();  // never hold the index lock across wrapped-backend IO
  base_->DeleteChunk(pkey);
  lock.lock();
  it = phys_.find(id);
  CHECK(it != phys_.end() && it->second.state == PhysState::kDeleting);
  phys_.erase(it);
  physical_bytes_ -= bytes;
  cv_.notify_all();
}

void DedupBackend::DecrefLocked(std::unique_lock<std::mutex>& lock, const PhysId& id) {
  auto it = phys_.find(id);
  CHECK(it != phys_.end());
  CHECK_GT(it->second.refs, 0);
  --it->second.refs;
  MaybeDeletePhysicalLocked(lock, id);
}

void DedupBackend::UnpinLocked(std::unique_lock<std::mutex>& lock, const PhysId& id) {
  auto it = phys_.find(id);
  CHECK(it != phys_.end());
  CHECK_GT(it->second.pins, 0);
  --it->second.pins;
  MaybeDeletePhysicalLocked(lock, id);
}

bool DedupBackend::WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, chunk_bytes());
  const ContentHash hash = content_hash_for_test_ ? content_hash_for_test_(data, bytes)
                                                  : HashChunkContent(data, bytes);

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Walk the collision chain for this hash, re-seating the map iterator by chain
    // slot after any section that drops the lock (the verify read invalidates
    // iterators). Entries mid-publish or mid-delete are waited out (bounded by one
    // wrapped-backend IO) so two concurrent writers of the same new content
    // converge on one physical copy.
    bool must_wait = false;
    bool rescan = false;
    PhysId match_id;
    bool matched = false;
    int64_t next_chain = 0;
    for (;;) {
      const auto it = phys_.lower_bound(PhysId{hash, next_chain});
      if (it == phys_.end() || it->first.hash != hash) {
        break;
      }
      const PhysId id = it->first;
      next_chain = id.chain + 1;
      PhysEntry& entry = it->second;
      if (entry.state != PhysState::kReady) {
        must_wait = true;
        continue;
      }
      if (entry.bytes != bytes) {
        continue;  // same hash, different size: a collision by construction
      }
      if (options_.verify_bytes) {
        // Pin the candidate and compare bytes outside the lock. A mismatch is a
        // true 128-bit collision: chain past it instead of aliasing.
        ++entry.pins;
        lock.unlock();
        std::vector<uint8_t> stored(static_cast<size_t>(bytes));
        const int64_t got =
            base_->ReadChunkUnverified(PhysicalKey(id), stored.data(), bytes);
        const bool same =
            got == bytes && std::memcmp(stored.data(), data, static_cast<size_t>(bytes)) == 0;
        lock.lock();
        UnpinLocked(lock, id);
        if (phys_.find(id) == phys_.end()) {
          rescan = true;  // candidate vanished while we compared; restart the walk
          break;
        }
        if (!same) {
          ++collision_chains_;
          continue;
        }
        match_id = id;
        matched = true;
        break;
      }
      match_id = id;
      matched = true;
      break;
    }
    if (rescan) {
      continue;
    }
    if (matched) {
      ++phys_.at(match_id).refs;
      auto old = logical_.find(key);
      if (old != logical_.end()) {
        if (old->second.phys == match_id) {
          // Re-write of identical content at the same key: net refcount unchanged.
          --phys_.at(match_id).refs;
        } else {
          logical_bytes_ -= old->second.bytes;
          const PhysId prev = old->second.phys;
          old->second = LogicalEntry{match_id, bytes};
          logical_bytes_ += bytes;
          ++total_writes_;
          ++dedup_hits_;
          dedup_bytes_saved_ += bytes;
          DecrefLocked(lock, prev);
          return true;
        }
      } else {
        logical_[key] = LogicalEntry{match_id, bytes};
        logical_bytes_ += bytes;
      }
      ++total_writes_;
      ++dedup_hits_;
      dedup_bytes_saved_ += bytes;
      return true;
    }
    if (must_wait) {
      cv_.wait(lock);
      continue;
    }

    // First copy of this content: claim a chain slot, publish outside the lock.
    const PhysId id{hash, next_chain};
    PhysEntry fresh;
    fresh.bytes = bytes;
    fresh.refs = 1;
    fresh.state = PhysState::kWriting;
    CHECK(phys_.emplace(id, fresh).second);
    lock.unlock();
    const bool ok = base_->WriteChunk(PhysicalKey(id), data, bytes);
    lock.lock();
    auto it = phys_.find(id);
    CHECK(it != phys_.end());
    if (!ok) {
      // Failed IO: withdraw the claim; any prior mapping at `key` stays intact
      // (WriteChunk's contract only promises the old chunk survives a failed
      // overwrite attempt).
      phys_.erase(it);
      cv_.notify_all();
      return false;
    }
    it->second.state = PhysState::kReady;
    physical_bytes_ += bytes;
    auto old = logical_.find(key);
    if (old != logical_.end()) {
      logical_bytes_ -= old->second.bytes;
      const PhysId prev = old->second.phys;
      old->second = LogicalEntry{id, bytes};
      logical_bytes_ += bytes;
      ++total_writes_;
      cv_.notify_all();
      DecrefLocked(lock, prev);
      return true;
    }
    logical_[key] = LogicalEntry{id, bytes};
    logical_bytes_ += bytes;
    ++total_writes_;
    cv_.notify_all();
    return true;
  }
}

int64_t DedupBackend::ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const {
  auto* self = const_cast<DedupBackend*>(this);
  std::unique_lock<std::mutex> lock(self->mu_);
  const auto it = logical_.find(key);
  if (it == logical_.end()) {
    return -1;
  }
  if (it->second.bytes > buf_bytes) {
    return -1;  // short buffer: no wrapped-backend IO, no stats, no side effects
  }
  const PhysId id = it->second.phys;
  ++self->phys_.at(id).pins;
  lock.unlock();
  const int64_t r = base_->ReadChunk(PhysicalKey(id), buf, buf_bytes);
  lock.lock();
  self->UnpinLocked(lock, id);
  return r;
}

int64_t DedupBackend::ReadChunkUnverified(const ChunkKey& key, void* buf,
                                          int64_t buf_bytes) const {
  auto* self = const_cast<DedupBackend*>(this);
  std::unique_lock<std::mutex> lock(self->mu_);
  const auto it = logical_.find(key);
  if (it == logical_.end()) {
    return -1;
  }
  if (it->second.bytes > buf_bytes) {
    return -1;
  }
  const PhysId id = it->second.phys;
  ++self->phys_.at(id).pins;
  lock.unlock();
  const int64_t r = base_->ReadChunkUnverified(PhysicalKey(id), buf, buf_bytes);
  lock.lock();
  self->UnpinLocked(lock, id);
  return r;
}

void DedupBackend::ReadChunksImpl(std::span<ChunkReadRequest> requests,
                                  const BatchCompletion& done, bool verify) const {
  auto* self = const_cast<DedupBackend*>(this);
  // Translate logical -> physical under one lock hold, pinning every target so a
  // concurrent Delete cannot reclaim a chunk mid-batch.
  std::vector<ChunkReadRequest> inner;
  std::vector<PhysId> pinned;
  std::vector<size_t> origin;  // inner[i] serves requests[origin[i]]
  inner.reserve(requests.size());
  pinned.reserve(requests.size());
  origin.reserve(requests.size());
  {
    std::unique_lock<std::mutex> lock(self->mu_);
    for (size_t i = 0; i < requests.size(); ++i) {
      ChunkReadRequest& req = requests[i];
      req.result = -1;
      const auto it = logical_.find(req.key);
      if (it == logical_.end() || it->second.bytes > req.buf_bytes) {
        continue;  // fails only this request, exactly like serial ReadChunk
      }
      const PhysId id = it->second.phys;
      ++self->phys_.at(id).pins;
      pinned.push_back(id);
      origin.push_back(i);
      inner.push_back(ChunkReadRequest{PhysicalKey(id), req.buf, req.buf_bytes, -1});
    }
  }
  if (!inner.empty()) {
    if (verify) {
      base_->ReadChunks(inner);
    } else {
      base_->ReadChunksUnverified(inner);
    }
  }
  for (size_t i = 0; i < inner.size(); ++i) {
    requests[origin[i]].result = inner[i].result;
  }
  {
    std::unique_lock<std::mutex> lock(self->mu_);
    for (const PhysId& id : pinned) {
      self->UnpinLocked(lock, id);
    }
  }
  if (done) {
    done();
  }
}

void DedupBackend::ReadChunks(std::span<ChunkReadRequest> requests,
                              const BatchCompletion& done) const {
  ReadChunksImpl(requests, done, /*verify=*/true);
}

void DedupBackend::ReadChunksUnverified(std::span<ChunkReadRequest> requests,
                                        const BatchCompletion& done) const {
  ReadChunksImpl(requests, done, /*verify=*/false);
}

bool DedupBackend::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return logical_.count(key) != 0;
}

int64_t DedupBackend::ChunkSize(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = logical_.find(key);
  return it == logical_.end() ? -1 : it->second.bytes;
}

bool DedupBackend::DeleteChunk(const ChunkKey& key) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = logical_.find(key);
  if (it == logical_.end()) {
    return false;
  }
  const PhysId id = it->second.phys;
  logical_bytes_ -= it->second.bytes;
  logical_.erase(it);
  DecrefLocked(lock, id);
  return true;
}

void DedupBackend::DeleteContext(int64_t context_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = logical_.lower_bound(ChunkKey{context_id, 0, 0});
  while (it != logical_.end() && it->first.context_id == context_id) {
    const PhysId id = it->second.phys;
    logical_bytes_ -= it->second.bytes;
    it = logical_.erase(it);
    // Decref may release the lock to delete the physical chunk; the iterator is
    // re-seated afterwards since the logical map may have changed under us.
    const ChunkKey resume = it != logical_.end() ? it->first : ChunkKey{context_id + 1, 0, 0};
    DecrefLocked(lock, id);
    it = logical_.lower_bound(resume);
  }
}

std::vector<std::pair<ChunkKey, int64_t>> DedupBackend::ListChunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<ChunkKey, int64_t>> out;
  out.reserve(logical_.size());
  for (const auto& [key, entry] : logical_) {
    out.emplace_back(key, entry.bytes);
  }
  return out;
}

std::vector<std::pair<ChunkKey, int64_t>> DedupBackend::ListPhysicalChunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<ChunkKey, int64_t>> out;
  out.reserve(phys_.size());
  for (const auto& [id, entry] : phys_) {
    out.emplace_back(PhysicalKey(id), entry.bytes);
  }
  return out;
}

int64_t DedupBackend::PhysicalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return physical_bytes_;
}

int64_t DedupBackend::collision_chains() const {
  std::lock_guard<std::mutex> lock(mu_);
  return collision_chains_;
}

StorageStats DedupBackend::Stats() const {
  // Read-side counters (tier hits, CRC verification, distributed failovers) come
  // from the wrapped backend — reads pass through 1:1, and pre-checked failures
  // (absent key, short buffer) never reach it, so its totals are exactly the
  // logical totals. Write-side and residency counters must be the dedup layer's
  // own: the wrapped backend only sees first-copy writes.
  StorageStats s = base_->Stats();
  std::lock_guard<std::mutex> lock(mu_);
  s.chunks_stored = static_cast<int64_t>(logical_.size());
  s.bytes_stored = logical_bytes_;
  s.total_writes = total_writes_;
  s.dedup_hits = dedup_hits_;
  s.dedup_bytes_saved = dedup_bytes_saved_;
  s.unique_chunks = static_cast<int64_t>(phys_.size());
  return s;
}

std::string DedupBackend::Name() const { return "dedup(" + base_->Name() + ")"; }

void DedupBackend::Quiesce() { base_->Quiesce(); }

DedupAuditReport DedupBackend::AuditIndex(bool repair) {
  // Offline invariant check — assumes no concurrent writers (fsck runs quiesced).
  DedupAuditReport report;
  std::unique_lock<std::mutex> lock(mu_);
  report.logical_chunks = static_cast<int64_t>(logical_.size());
  report.unique_chunks = static_cast<int64_t>(phys_.size());

  // Recount referents from the logical map.
  std::map<PhysId, int64_t> recount;
  for (const auto& [key, entry] : logical_) {
    ++recount[entry.phys];
  }
  for (auto& [id, entry] : phys_) {
    const auto rc = recount.find(id);
    const int64_t actual = rc == recount.end() ? 0 : rc->second;
    if (entry.refs != actual) {
      ++report.refcount_drift;
      DedupAuditFinding f;
      f.kind = DedupAuditFinding::Kind::kRefcountDrift;
      f.physical_key = PhysicalKey(id);
      f.bytes = entry.bytes;
      f.refs_indexed = entry.refs;
      f.refs_recounted = actual;
      if (repair) {
        entry.refs = actual;
        f.repaired = true;
      }
      report.findings.push_back(f);
    }
  }

  // Index entries whose physical bytes are gone: their referents can never read.
  // Snapshot the ids first — HasChunk runs without the lock, and map iterators must
  // not straddle that.
  std::vector<PhysId> snapshot;
  snapshot.reserve(phys_.size());
  for (const auto& [id, entry] : phys_) {
    snapshot.push_back(id);
  }
  std::vector<PhysId> missing;
  lock.unlock();
  for (const PhysId& id : snapshot) {
    if (!base_->HasChunk(PhysicalKey(id))) {
      missing.push_back(id);
    }
  }
  lock.lock();
  for (const PhysId& id : missing) {
    const auto it = phys_.find(id);
    if (it == phys_.end()) {
      continue;
    }
    ++report.missing_physical;
    DedupAuditFinding f;
    f.kind = DedupAuditFinding::Kind::kMissingPhysical;
    f.physical_key = PhysicalKey(id);
    f.bytes = it->second.bytes;
    f.refs_indexed = it->second.refs;
    if (repair) {
      // Drop every referent so its reads report absent (-1) and the caller falls
      // back to recompute-from-tokens, then retire the dead entry.
      for (auto lit = logical_.begin(); lit != logical_.end();) {
        if (lit->second.phys == id) {
          logical_bytes_ -= lit->second.bytes;
          lit = logical_.erase(lit);
        } else {
          ++lit;
        }
      }
      physical_bytes_ -= it->second.bytes;
      phys_.erase(it);
      f.repaired = true;
    }
    report.findings.push_back(f);
  }

  // Physical chunks in the wrapped store that no index entry claims.
  std::map<ChunkKey, PhysId> known;
  for (const auto& [id, entry] : phys_) {
    known.emplace(PhysicalKey(id), id);
  }
  lock.unlock();
  for (const auto& [key, bytes] : base_->ListChunks()) {
    if (known.count(key) != 0) {
      continue;
    }
    ++report.orphan_physical;
    DedupAuditFinding f;
    f.kind = DedupAuditFinding::Kind::kOrphanPhysical;
    f.physical_key = key;
    f.bytes = bytes;
    if (repair && base_->DeleteChunk(key)) {
      f.repaired = true;
    }
    report.findings.push_back(f);
  }
  lock.lock();
  report.logical_chunks = static_cast<int64_t>(logical_.size());
  report.unique_chunks = static_cast<int64_t>(phys_.size());
  return report;
}

}  // namespace hcache
