#include "src/storage/fsck.h"

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "src/common/logging.h"
#include "src/storage/codec.h"
#include "src/storage/codec_simd.h"
#include "src/storage/dedup_backend.h"
#include "src/storage/distributed_backend.h"
#include "src/storage/integrity.h"

namespace hcache {
namespace {

namespace fs = std::filesystem;

// Classifies one chunk's stored bytes. VerifyChunkBytes alone folds every
// magic-bearing failure into kCorrupt; fsck wants to split out the torn-write case
// (header intact and trustworthy, payload tail missing), so it re-parses the header
// prefix by hand when verification fails.
FsckClass ClassifyChunk(const uint8_t* data, int64_t bytes, std::string* detail) {
  switch (VerifyChunkBytes(data, bytes)) {
    case ChunkVerdict::kOkVerified:
      return FsckClass::kClean;
    case ChunkVerdict::kOkUnverified:
      detail->assign("no checksum (v1/legacy/opaque)");
      return FsckClass::kUnverified;
    case ChunkVerdict::kCorrupt:
      break;
  }
  // Magic is present (else the verdict would be kOkUnverified). Read the fixed
  // prefix fields; every header version starts {magic u32, version u16, codec u8,
  // reserved u8, rows u32, cols u32}.
  if (bytes < kChunkHeaderBytesV1) {
    detail->assign("truncated inside the header");
    return FsckClass::kPartial;
  }
  uint16_t version = 0;
  uint8_t codec = 0;
  uint32_t rows = 0, cols = 0;
  std::memcpy(&version, data + 4, sizeof(version));
  std::memcpy(&codec, data + 6, sizeof(codec));
  std::memcpy(&rows, data + 8, sizeof(rows));
  std::memcpy(&cols, data + 12, sizeof(cols));
  const bool fields_sane = (version == 1 || version == kChunkFormatVersion) &&
                           codec <= static_cast<uint8_t>(ChunkCodec::kInt8) && cols > 0;
  if (fields_sane) {
    const int64_t header_bytes =
        version == 1 ? kChunkHeaderBytesV1 : static_cast<int64_t>(sizeof(ChunkHeader));
    if (version == kChunkFormatVersion &&
        bytes >= static_cast<int64_t>(sizeof(ChunkHeader))) {
      // Full v2 header present: only trust its row/col claim if the header's own
      // CRC holds — a flipped bit in `rows` must not masquerade as truncation.
      uint32_t stored_hcrc = 0;
      std::memcpy(&stored_hcrc, data + offsetof(ChunkHeader, header_crc32c),
                  sizeof(stored_hcrc));
      if (Crc32c(data, offsetof(ChunkHeader, header_crc32c)) != stored_hcrc) {
        detail->assign("header CRC mismatch");
        return FsckClass::kCorrupt;
      }
    }
    const int64_t expected = header_bytes + static_cast<int64_t>(rows) *
                                                CodecRowBytes(static_cast<ChunkCodec>(codec),
                                                              static_cast<int64_t>(cols));
    if (bytes < expected) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "truncated: %lld of %lld bytes",
                    static_cast<long long>(bytes), static_cast<long long>(expected));
      detail->assign(buf);
      return FsckClass::kPartial;
    }
  }
  detail->assign("payload/header CRC mismatch");
  return FsckClass::kCorrupt;
}

void AppendJsonFinding(std::ostringstream& os, const FsckFinding& f, bool first) {
  if (!first) {
    os << ',';
  }
  os << "{\"context\":" << f.key.context_id << ",\"layer\":" << f.key.layer
     << ",\"chunk\":" << f.key.chunk_index << ",\"bytes\":" << f.bytes << ",\"class\":\""
     << FsckClassName(f.klass) << "\",\"repaired\":" << (f.repaired ? "true" : "false");
  if (f.node >= 0) {
    os << ",\"node\":" << f.node;
  }
  os << ",\"detail\":\"";
  for (const char c : f.detail) {  // detail strings are ASCII we wrote ourselves
    if (c == '"' || c == '\\') {
      os << '\\';
    }
    os << c;
  }
  os << "\"}";
}

}  // namespace

const char* FsckClassName(FsckClass c) {
  switch (c) {
    case FsckClass::kClean:
      return "clean";
    case FsckClass::kUnverified:
      return "unverified";
    case FsckClass::kPartial:
      return "partial";
    case FsckClass::kCorrupt:
      return "corrupt";
    case FsckClass::kUnderReplicated:
      return "under-replicated";
    case FsckClass::kDedupOrphan:
      return "dedup-orphan";
    case FsckClass::kDedupMissing:
      return "dedup-missing";
    case FsckClass::kDedupDrift:
      return "dedup-drift";
  }
  return "unknown";
}

namespace {

// Walks one physical store, classifying every chunk it enumerates. `node` tags the
// findings (and accumulates a per-node corrupt count) for distributed scans; -1 for
// a plain single-store scan.
void ScanStore(StorageBackend* store, bool repair, int node, FsckReport* report,
               FsckNodeReport* node_report) {
  std::vector<uint8_t> buf;
  for (const auto& [key, size] : store->ListChunks()) {
    ++report->chunks_scanned;
    FsckClass klass = FsckClass::kCorrupt;
    std::string detail;
    if (size <= 0) {
      detail = "unreadable: empty or stat failed";
    } else {
      buf.resize(static_cast<size_t>(size));
      if (store->ReadChunkUnverified(key, buf.data(), size) != size) {
        detail = "unreadable: short read";
      } else {
        report->bytes_scanned += size;
        klass = ClassifyChunk(buf.data(), size, &detail);
      }
    }
    switch (klass) {
      case FsckClass::kClean:
        ++report->clean;
        continue;
      case FsckClass::kUnverified:
        ++report->unverified;
        continue;  // healthy-but-unchecked: counted, not listed
      case FsckClass::kPartial:
        ++report->partial;
        break;
      default:
        klass = FsckClass::kCorrupt;
        ++report->corrupt;
        break;
    }
    if (node_report != nullptr) {
      ++node_report->corrupt;
    }
    FsckFinding finding{key, size, klass, false, detail, node};
    if (repair && store->DeleteChunk(key)) {
      finding.repaired = true;
      ++report->repaired;
    }
    report->findings.push_back(std::move(finding));
  }
}

// The distributed deep scan: per-node physical classification, then a logical
// replication audit. With repair on, a damaged copy is quarantined from its node
// store first, so the RepairChunk that follows re-sources it from a clean replica.
void ScanDistributed(DistributedColdBackend* dist, const FsckOptions& options,
                     FsckReport* report) {
  const auto infos = dist->NodeTable();
  report->nodes.reserve(infos.size());
  for (const auto& info : infos) {
    FsckNodeReport nr;
    nr.node = info.id;
    nr.up = info.up;
    nr.draining = info.draining;
    nr.removed = info.removed;
    report->nodes.push_back(nr);
  }
  for (size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].removed) {
      continue;  // retired by Drain: nothing resident, nothing to audit
    }
    // fsck is an offline tool: a node the serving plane marked down still has a
    // readable store, and auditing it now is exactly when it matters.
    ScanStore(dist->node_store(infos[i].id), options.repair, infos[i].id, report,
              &report->nodes[i]);
  }
  for (const auto& [key, size] : dist->ListChunks()) {
    const auto st = dist->CheckReplication(key);
    const int replicas = static_cast<int>(st.home.size());
    if (st.missing_copies == 0 && st.corrupt_copies == 0) {
      continue;
    }
    ++report->under_replicated;
    char detail[96];
    std::snprintf(detail, sizeof(detail), "%d of %d home copies healthy (%d missing, %d corrupt)",
                  st.healthy_copies, replicas, st.missing_copies, st.corrupt_copies);
    FsckFinding finding{key, size, FsckClass::kUnderReplicated, false, detail, -1};
    if (options.repair && dist->RepairChunk(key)) {
      finding.repaired = true;
      ++report->repaired;
      --report->under_replicated;
    }
    report->findings.push_back(std::move(finding));
  }
  // Refresh per-node occupancy after any repair traffic.
  const auto after = dist->NodeTable();
  for (size_t i = 0; i < after.size() && i < report->nodes.size(); ++i) {
    report->nodes[i].chunks = after[i].chunks;
    report->nodes[i].bytes = after[i].bytes;
  }
}

// The dedup deep scan: classify the PHYSICAL plane (each unique chunk once —
// distributed-aware when dedup wraps the replicated cold plane), then audit the
// refcount invariant and surface its findings in fsck terms. The order matters
// under repair: a corrupt physical chunk the scan quarantines becomes a
// missing-physical in the audit, which then drops the dead logical referents so
// the read path reports an ordinary miss (recompute fallback) instead of -2.
void ScanDedup(DedupBackend* dedup, const FsckOptions& options, FsckReport* report) {
  if (auto* dist = dynamic_cast<DistributedColdBackend*>(dedup->base())) {
    ScanDistributed(dist, options, report);
  } else {
    ScanStore(dedup->base(), options.repair, /*node=*/-1, report, nullptr);
  }
  const DedupAuditReport audit = dedup->AuditIndex(options.repair);
  report->dedup_orphans += audit.orphan_physical;
  report->dedup_missing += audit.missing_physical;
  report->dedup_drift += audit.refcount_drift;
  for (const DedupAuditFinding& f : audit.findings) {
    FsckFinding finding;
    finding.key = f.physical_key;
    finding.bytes = f.bytes;
    finding.repaired = f.repaired;
    char detail[96];
    switch (f.kind) {
      case DedupAuditFinding::Kind::kOrphanPhysical:
        finding.klass = FsckClass::kDedupOrphan;
        finding.detail = "physical chunk with zero logical referents";
        break;
      case DedupAuditFinding::Kind::kMissingPhysical:
        finding.klass = FsckClass::kDedupMissing;
        std::snprintf(detail, sizeof(detail),
                      "physical chunk gone; %lld logical referents dropped to miss",
                      static_cast<long long>(f.refs_indexed));
        finding.detail = detail;
        break;
      case DedupAuditFinding::Kind::kRefcountDrift:
        finding.klass = FsckClass::kDedupDrift;
        std::snprintf(detail, sizeof(detail), "index refcount %lld, recounted %lld",
                      static_cast<long long>(f.refs_indexed),
                      static_cast<long long>(f.refs_recounted));
        finding.detail = detail;
        break;
    }
    if (finding.repaired) {
      ++report->repaired;
    }
    report->findings.push_back(std::move(finding));
  }
}

}  // namespace

FsckReport RunFsck(StorageBackend* backend, const FsckOptions& options) {
  CHECK(backend != nullptr);
  FsckReport report;
  if (auto* dedup = dynamic_cast<DedupBackend*>(backend)) {
    ScanDedup(dedup, options, &report);
  } else if (auto* dist = dynamic_cast<DistributedColdBackend*>(backend)) {
    ScanDistributed(dist, options, &report);
  } else {
    ScanStore(backend, options.repair, /*node=*/-1, &report, nullptr);
  }
  // Orphan sweep: `*.tmp` under the scan dirs is always residue of a torn write —
  // the rename that would have published it never happened.
  for (const std::string& dir : options.scan_dirs) {
    std::error_code ec;
    for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (!it->is_regular_file(ec) || it->path().extension() != ".tmp") {
        continue;
      }
      ++report.orphaned_temp_files;
      FsckFinding finding;
      finding.bytes = static_cast<int64_t>(it->file_size(ec));
      finding.klass = FsckClass::kPartial;
      finding.detail = "orphaned temp file: " + it->path().string();
      if (options.repair && fs::remove(it->path(), ec) && !ec) {
        finding.repaired = true;
        ++report.repaired;
      }
      report.findings.push_back(std::move(finding));
    }
  }
  return report;
}

std::string FsckReport::ToJson() const {
  std::ostringstream os;
  os << "{\"chunks_scanned\":" << chunks_scanned << ",\"bytes_scanned\":" << bytes_scanned
     << ",\"clean\":" << clean << ",\"unverified\":" << unverified
     << ",\"partial\":" << partial << ",\"corrupt\":" << corrupt
     << ",\"orphaned_temp_files\":" << orphaned_temp_files
     << ",\"under_replicated\":" << under_replicated
     << ",\"dedup_orphans\":" << dedup_orphans << ",\"dedup_missing\":" << dedup_missing
     << ",\"dedup_drift\":" << dedup_drift << ",\"repaired\":" << repaired
     << ",\"healthy\":" << (Healthy() ? "true" : "false");
  if (!nodes.empty()) {
    os << ",\"nodes\":[";
    for (size_t i = 0; i < nodes.size(); ++i) {
      const FsckNodeReport& n = nodes[i];
      os << (i == 0 ? "" : ",") << "{\"node\":" << n.node << ",\"up\":"
         << (n.up ? "true" : "false") << ",\"draining\":" << (n.draining ? "true" : "false")
         << ",\"removed\":" << (n.removed ? "true" : "false") << ",\"chunks\":" << n.chunks
         << ",\"bytes\":" << n.bytes << ",\"corrupt\":" << n.corrupt << '}';
    }
    os << ']';
  }
  os << ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    AppendJsonFinding(os, findings[i], i == 0);
  }
  os << "]}";
  return os.str();
}

}  // namespace hcache
