// Storage-path timing for a platform: turns IO patterns into seconds.
//
// The data path modeled is the paper's GPUDirect pipeline (§5: SPDK + GDRCopy, SSD ->
// GPU BAR with no host bounce): chunks are striped round-robin across the SSDs, read in
// parallel, and the stream is capped by the GPU's PCIe ingest bandwidth. DRAM backends
// skip the device model and are purely PCIe-bound.
#ifndef HCACHE_SRC_STORAGE_IO_TIMING_H_
#define HCACHE_SRC_STORAGE_IO_TIMING_H_

#include "src/model/config.h"
#include "src/sim/hardware.h"
#include "src/storage/layout.h"

namespace hcache {

class StorageIoModel {
 public:
  explicit StorageIoModel(const Platform& platform);

  // Sustained read bandwidth into one GPU for a stream of `io_size`-byte requests.
  double EffectiveReadBw(double io_size) const;
  double EffectiveWriteBw(double io_size) const;

  // Wall time to execute `pattern` as reads into one GPU (striped, pipelined, high
  // queue depth: one leading device latency plus streaming time). This is the
  // batched-submission model — the cost StorageBackend::ReadChunks pays.
  double ReadTime(const IoPattern& pattern) const;
  double WriteTime(const IoPattern& pattern) const;

  // Wall time for the same pattern issued as `num_ios` serial single-chunk reads
  // (queue depth 1: each IO pays the full device latency before the next is
  // submitted) — the cost of a per-chunk ReadChunk loop. The gap to ReadTime is the
  // modeled win the batched read API exists to collect.
  double SerialReadTime(const IoPattern& pattern) const;

  // Convenience wrappers for the restoration paths. `codec` sets the encoded bytes
  // the hidden-state stream moves (kFp16 = the paper's transport).
  double HiddenLayerReadTime(const ModelConfig& cfg, int64_t n,
                             StorageLayout layout = StorageLayout::kLayerChunked,
                             int64_t chunk_tokens = kDefaultChunkTokens,
                             ChunkCodec codec = ChunkCodec::kFp16) const;
  double KvLayerReadTime(const ModelConfig& cfg, int64_t n,
                         int64_t chunk_tokens = kDefaultChunkTokens) const;

  // One-time latency before the first bytes of a read stream arrive (the pipeline-fill
  // term restorers charge once per restoration).
  double DeviceLatency() const;

  const Platform& platform() const { return platform_; }

 private:
  Platform platform_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_IO_TIMING_H_
