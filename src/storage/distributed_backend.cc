#include "src/storage/distributed_backend.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/storage/memory_backend.h"

namespace hcache {

DistributedColdBackend::DistributedColdBackend(int num_nodes, int64_t chunk_bytes,
                                               const DistributedColdOptions& options,
                                               const NodeFactory& factory)
    : StorageBackend(chunk_bytes), options_(options) {
  CHECK_GT(num_nodes, 0);
  CHECK_GT(options_.replication, 0);
  nodes_.reserve(static_cast<size_t>(num_nodes));
  std::vector<int> ids;
  ids.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    auto node = std::make_unique<Node>();
    node->id = i;
    node->store = factory ? factory(i, chunk_bytes)
                          : std::make_unique<MemoryBackend>(chunk_bytes);
    CHECK(node->store != nullptr);
    node->io = std::make_unique<InstrumentedBackend>(node->store.get());
    node->capacity_bytes.store(options_.node_capacity_bytes, std::memory_order_relaxed);
    nodes_.push_back(std::move(node));
    ids.push_back(i);
  }
  placement_ =
      std::make_shared<const PlacementTable>(std::move(ids), options_.vnodes_per_node);

  // Adopt whatever the node stores already hold (FileBackend nodes recover their
  // on-disk indexes at construction): rebuild the logical index from the physical
  // copies — all at generation 0 — then queue anything under its home replica
  // count. This is what lets fsck open a distributed store cold.
  for (const auto& node : nodes_) {
    for (const auto& [key, size] : node->store->ListChunks()) {
      IndexEntry& e = index_[key];
      e.committed = true;
      e.size = std::max(e.size, size);  // a torn copy is the shorter one
      e.copies[node->id] = e.gen;
    }
  }
  if (!index_.empty()) {
    for (const auto& [key, e] : index_) {
      int have = 0;
      for (const int n : placement_->ReplicasFor(key, options_.replication)) {
        auto it = e.copies.find(n);
        if (it != e.copies.end() && it->second == e.gen) {
          ++have;
        }
      }
      if (have < DesiredReplication(*placement_)) {
        repair_queue_.insert(key);
      }
    }
    repair_dirty_ = !repair_queue_.empty();
  }

  if (options_.background_repair) {
    repair_worker_ = std::thread([this] { RepairLoop(); });
  }
}

DistributedColdBackend::~DistributedColdBackend() {
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    shutting_down_ = true;
  }
  repair_cv_.notify_all();
  if (repair_worker_.joinable()) {
    repair_worker_.join();
  }
}

std::shared_ptr<const PlacementTable> DistributedColdBackend::placement() const {
  std::lock_guard<std::mutex> lk(placement_mu_);
  return placement_;
}

bool DistributedColdBackend::NodeWritable(int node) const {
  const Node& n = *nodes_[static_cast<size_t>(node)];
  return !n.down.load() && !n.draining.load() && !n.removed.load();
}

bool DistributedColdBackend::NodeReadable(int node) const {
  const Node& n = *nodes_[static_cast<size_t>(node)];
  return !n.down.load() && !n.removed.load();
}

bool DistributedColdBackend::NodeHasCapacity(int node, int64_t bytes) const {
  const Node& n = *nodes_[static_cast<size_t>(node)];
  const int64_t cap = n.capacity_bytes.load(std::memory_order_relaxed);
  if (cap <= 0) {
    return true;
  }
  return n.store->Stats().bytes_stored + bytes <= cap;
}

std::vector<int> DistributedColdBackend::WriteTargets(const ChunkKey& key,
                                                      const PlacementTable& table,
                                                      int64_t bytes) const {
  std::vector<int> targets;
  for (const int n : table.WalkOrder(key)) {
    if (!NodeWritable(n) || !NodeHasCapacity(n, bytes)) {
      continue;
    }
    targets.push_back(n);
    if (static_cast<int>(targets.size()) == options_.replication) {
      break;
    }
  }
  return targets;
}

int DistributedColdBackend::DesiredReplication(const PlacementTable& table) const {
  return std::min(options_.replication, table.num_nodes());
}

std::vector<int> DistributedColdBackend::CandidateHolders(
    const ChunkKey& key, const PlacementTable& table, uint64_t gen,
    const std::map<int, uint64_t>& copies) const {
  std::vector<int> cands;
  cands.reserve(copies.size());
  for (const int n : table.WalkOrder(key)) {
    auto it = copies.find(n);
    if (it != copies.end() && it->second == gen) {
      cands.push_back(n);
    }
  }
  // Holders outside the table: a draining node keeps serving until evacuated.
  for (const auto& [n, g] : copies) {
    if (g == gen && !table.HasNode(n)) {
      cands.push_back(n);
    }
  }
  return cands;
}

void DistributedColdBackend::EnqueueRepairLocked(const ChunkKey& key) const {
  repair_queue_.insert(key);
  repair_dirty_ = true;
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

namespace {
struct WriteClaim {
  uint64_t gen = 0;
  uint64_t epoch = 0;   // entry repair_epoch at claim time
  bool created = false;
  std::vector<int> targets;
  std::vector<int> landed;
};
}  // namespace

bool DistributedColdBackend::WriteChunk(const ChunkKey& key, const void* data,
                                        int64_t bytes) {
  ChunkWriteRequest req{key, data, bytes, false};
  WriteChunks(std::span<ChunkWriteRequest>(&req, 1));
  return req.ok;
}

bool DistributedColdBackend::WriteChunks(std::span<ChunkWriteRequest> requests,
                                         const BatchCompletion& done) {
  // Shared for the whole call: Drain's exclusive flush cannot complete while any
  // writer still holds a pre-swap placement table (see write_barrier_).
  std::shared_lock<std::shared_mutex> barrier(write_barrier_);
  const auto table = placement();
  std::vector<WriteClaim> claims(requests.size());

  // Claim a generation per request BEFORE any node IO: concurrent repairers of
  // the old generation see the bump and stand down, and the key reads as absent
  // (not half-written) until the commit below.
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    for (size_t i = 0; i < requests.size(); ++i) {
      const ChunkWriteRequest& req = requests[i];
      CHECK_GT(req.bytes, 0);
      CHECK_LE(req.bytes, chunk_bytes());
      auto [it, inserted] = index_.try_emplace(req.key);
      claims[i].created = inserted;
      claims[i].gen = ++it->second.gen;
      claims[i].epoch = it->second.repair_epoch;
    }
  }

  // Fan the copies out per node so every node serves its share of the batch as
  // ONE submission (the same device-round-trip economics TieredBackend's drain
  // tickets rely on).
  std::map<int, std::vector<size_t>> per_node;
  for (size_t i = 0; i < requests.size(); ++i) {
    claims[i].targets = WriteTargets(requests[i].key, *table, requests[i].bytes);
    for (const int n : claims[i].targets) {
      per_node[n].push_back(i);
    }
  }
  for (auto& [n, idxs] : per_node) {
    std::vector<ChunkWriteRequest> sub;
    sub.reserve(idxs.size());
    for (const size_t i : idxs) {
      sub.push_back(
          ChunkWriteRequest{requests[i].key, requests[i].data, requests[i].bytes, false});
    }
    nodes_[static_cast<size_t>(n)]->io->WriteChunks(std::span<ChunkWriteRequest>(sub));
    for (size_t j = 0; j < idxs.size(); ++j) {
      if (sub[j].ok) {
        claims[idxs[j]].landed.push_back(n);
      }
    }
  }

  // Commit. The fast path lands every request under one lock; a request whose
  // claim→commit window overlapped a repair (or Balance trim) of the same key
  // falls to the redo loop below.
  const int desired = DesiredReplication(*table);
  bool all_ok = true;
  bool wake = false;
  std::vector<size_t> slow;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    for (size_t i = 0; i < requests.size(); ++i) {
      ChunkWriteRequest& req = requests[i];
      WriteClaim& c = claims[i];
      req.ok = !c.landed.empty();
      all_ok = all_ok && req.ok;
      auto it = index_.find(req.key);
      if (it == index_.end() || it->second.gen != c.gen) {
        // Deleted or overwritten while in flight: the later operation owns the
        // entry; our physical copies are strays Balance will trim.
        if (req.ok) {
          total_writes_.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      IndexEntry& e = it->second;
      if (c.landed.empty()) {
        if (c.created) {
          index_.erase(it);  // failed first write: the key stays absent
        }
        continue;
      }
      if (e.repairs_inflight > 0 || e.repair_epoch != c.epoch) {
        slow.push_back(i);
        continue;
      }
      e.size = req.bytes;
      e.committed = true;
      e.copies.clear();
      for (const int n : c.landed) {
        e.copies[n] = c.gen;
      }
      total_writes_.fetch_add(1, std::memory_order_relaxed);
      if (static_cast<int>(c.landed.size()) < desired) {
        degraded_writes_.fetch_add(1, std::memory_order_relaxed);
        EnqueueRepairLocked(req.key);
        wake = true;
      } else {
        repair_queue_.erase(req.key);
      }
    }
  }

  // Redo loop: rewrite the landed copies until no repair window overlaps, then
  // commit. Repairers of a superseded generation abort as soon as they observe
  // the gen bump, so this converges after at most the repairs already in flight.
  for (const size_t i : slow) {
    ChunkWriteRequest& req = requests[i];
    WriteClaim& c = claims[i];
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(index_mu_);
        auto it = index_.find(req.key);
        if (it == index_.end() || it->second.gen != c.gen) {
          total_writes_.fetch_add(1, std::memory_order_relaxed);
          break;  // superseded — the newer operation owns the entry
        }
        repaired_cv_.wait(lk, [&] {
          auto jt = index_.find(req.key);
          return jt == index_.end() || jt->second.gen != c.gen ||
                 jt->second.repairs_inflight == 0;
        });
        it = index_.find(req.key);
        if (it == index_.end() || it->second.gen != c.gen) {
          total_writes_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        IndexEntry& e = it->second;
        if (e.repair_epoch == c.epoch) {
          e.size = req.bytes;
          e.committed = true;
          e.copies.clear();
          for (const int n : c.landed) {
            e.copies[n] = c.gen;
          }
          total_writes_.fetch_add(1, std::memory_order_relaxed);
          if (static_cast<int>(c.landed.size()) < desired) {
            degraded_writes_.fetch_add(1, std::memory_order_relaxed);
            EnqueueRepairLocked(req.key);
            wake = true;
          } else {
            repair_queue_.erase(req.key);
          }
          break;
        }
        c.epoch = e.repair_epoch;
      }
      // A repair touched this key while our writes were in flight; its bytes may
      // have landed after ours on some node. Rewrite our copies, then recheck.
      for (const int n : c.landed) {
        nodes_[static_cast<size_t>(n)]->io->WriteChunk(req.key, req.data, req.bytes);
      }
    }
  }

  if (wake) {
    repair_cv_.notify_all();
  }
  if (done) {
    done();
  }
  return all_ok;
}

// ---------------------------------------------------------------------------
// Read path (failover)
// ---------------------------------------------------------------------------

int64_t DistributedColdBackend::ReadChunk(const ChunkKey& key, void* buf,
                                          int64_t buf_bytes) const {
  return ReadChunkImpl(key, buf, buf_bytes, /*verify=*/true);
}

int64_t DistributedColdBackend::ReadChunkUnverified(const ChunkKey& key, void* buf,
                                                    int64_t buf_bytes) const {
  return ReadChunkImpl(key, buf, buf_bytes, /*verify=*/false);
}

int64_t DistributedColdBackend::ReadChunkImpl(const ChunkKey& key, void* buf,
                                              int64_t buf_bytes, bool verify) const {
  int64_t size = 0;
  uint64_t gen = 0;
  std::map<int, uint64_t> copies;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = index_.find(key);
    if (it == index_.end() || !it->second.committed) {
      return -1;
    }
    size = it->second.size;
    if (size > buf_bytes) {
      return -1;  // short buffer: no node IO, no stats, no side effects
    }
    gen = it->second.gen;
    copies = it->second.copies;
  }

  const auto table = placement();
  bool corrupt_seen = false;
  bool damage_seen = false;
  int attempts = 0;
  int64_t delivered = -1;
  for (const int n : CandidateHolders(key, *table, gen, copies)) {
    if (!NodeReadable(n)) {
      ++attempts;  // down node: fail over without touching it
      continue;
    }
    InstrumentedBackend* io = nodes_[static_cast<size_t>(n)]->io.get();
    const int64_t got = verify ? io->ReadChunk(key, buf, buf_bytes)
                               : io->ReadChunkUnverified(key, buf, buf_bytes);
    if (got >= 0) {
      delivered = got;
      break;
    }
    damage_seen = true;  // this replica's copy is gone or corrupt — repairable
    if (got == kChunkCorrupt) {
      corrupt_seen = true;
    }
    ++attempts;
  }

  if (delivered >= 0) {
    total_reads_.fetch_add(1, std::memory_order_relaxed);
    read_bytes_.fetch_add(delivered, std::memory_order_relaxed);
    if (attempts > 0) {
      failover_reads_.fetch_add(1, std::memory_order_relaxed);
    }
    if (damage_seen) {
      {
        std::lock_guard<std::mutex> lk(index_mu_);
        EnqueueRepairLocked(key);
      }
      repair_cv_.notify_all();
    }
    return delivered;
  }

  // Nothing valid reachable. Never deliver wrong bytes: all-corrupt surfaces as
  // kChunkCorrupt, everything else as a detected miss — either way the caller's
  // recompute fallback engages and the chunk stays queued for repair.
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    EnqueueRepairLocked(key);
  }
  repair_cv_.notify_all();
  if (corrupt_seen) {
    crc_failures_.fetch_add(1, std::memory_order_relaxed);
    return kChunkCorrupt;
  }
  return -1;
}

void DistributedColdBackend::ReadChunks(std::span<ChunkReadRequest> requests,
                                        const BatchCompletion& done) const {
  ReadChunksImpl(requests, done, /*verify=*/true);
}

void DistributedColdBackend::ReadChunksUnverified(std::span<ChunkReadRequest> requests,
                                                  const BatchCompletion& done) const {
  ReadChunksImpl(requests, done, /*verify=*/false);
}

void DistributedColdBackend::ReadChunksImpl(std::span<ChunkReadRequest> requests,
                                            const BatchCompletion& done,
                                            bool verify) const {
  const auto table = placement();
  struct Pending {
    size_t idx = 0;
    std::vector<int> cands;
    size_t next = 0;
    int attempts = 0;
    bool corrupt_seen = false;
    bool damage_seen = false;
  };
  std::vector<Pending> pool;
  pool.reserve(requests.size());
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    for (size_t i = 0; i < requests.size(); ++i) {
      ChunkReadRequest& req = requests[i];
      req.result = -1;
      auto it = index_.find(req.key);
      if (it == index_.end() || !it->second.committed ||
          it->second.size > req.buf_bytes) {
        continue;  // absent or short buffer: per-request -1, no side effects
      }
      Pending p;
      p.idx = i;
      p.cands = CandidateHolders(req.key, *table, it->second.gen, it->second.copies);
      pool.push_back(std::move(p));
    }
  }

  std::vector<ChunkKey> to_repair;
  std::vector<Pending*> active;
  active.reserve(pool.size());
  for (auto& p : pool) {
    active.push_back(&p);
  }
  // Rounds of per-node batches: every request starts at its best replica; the
  // failed ones retry on their next replica in the following round.
  while (!active.empty()) {
    std::map<int, std::vector<Pending*>> groups;
    for (Pending* p : active) {
      int target = -1;
      while (p->next < p->cands.size()) {
        const int n = p->cands[p->next];
        if (NodeReadable(n)) {
          target = n;
          break;
        }
        ++p->next;
        ++p->attempts;
      }
      if (target < 0) {
        ChunkReadRequest& req = requests[p->idx];
        if (p->corrupt_seen) {
          req.result = kChunkCorrupt;
          crc_failures_.fetch_add(1, std::memory_order_relaxed);
        } else {
          req.result = -1;
        }
        to_repair.push_back(req.key);
        continue;
      }
      groups[target].push_back(p);
    }
    std::vector<Pending*> next_active;
    for (auto& [n, members] : groups) {
      std::vector<ChunkReadRequest> sub;
      sub.reserve(members.size());
      for (Pending* p : members) {
        const ChunkReadRequest& req = requests[p->idx];
        sub.push_back(ChunkReadRequest{req.key, req.buf, req.buf_bytes, -1});
      }
      InstrumentedBackend* io = nodes_[static_cast<size_t>(n)]->io.get();
      if (verify) {
        io->ReadChunks(std::span<ChunkReadRequest>(sub));
      } else {
        io->ReadChunksUnverified(std::span<ChunkReadRequest>(sub));
      }
      for (size_t j = 0; j < members.size(); ++j) {
        Pending* p = members[j];
        ChunkReadRequest& req = requests[p->idx];
        const int64_t got = sub[j].result;
        if (got >= 0) {
          req.result = got;
          total_reads_.fetch_add(1, std::memory_order_relaxed);
          read_bytes_.fetch_add(got, std::memory_order_relaxed);
          if (p->attempts > 0) {
            failover_reads_.fetch_add(1, std::memory_order_relaxed);
          }
          if (p->damage_seen) {
            to_repair.push_back(req.key);
          }
          continue;
        }
        p->damage_seen = true;
        if (got == kChunkCorrupt) {
          p->corrupt_seen = true;
        }
        ++p->next;
        ++p->attempts;
        next_active.push_back(p);
      }
    }
    active = std::move(next_active);
  }

  if (!to_repair.empty()) {
    {
      std::lock_guard<std::mutex> lk(index_mu_);
      for (const ChunkKey& k : to_repair) {
        EnqueueRepairLocked(k);
      }
    }
    repair_cv_.notify_all();
  }
  if (done) {
    done();
  }
}

// ---------------------------------------------------------------------------
// Lookup / delete / enumerate
// ---------------------------------------------------------------------------

bool DistributedColdBackend::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lk(index_mu_);
  auto it = index_.find(key);
  return it != index_.end() && it->second.committed;
}

int64_t DistributedColdBackend::ChunkSize(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lk(index_mu_);
  auto it = index_.find(key);
  return (it != index_.end() && it->second.committed) ? it->second.size : -1;
}

void DistributedColdBackend::DeleteContext(int64_t context_id) {
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = index_.lower_bound(ChunkKey{context_id, std::numeric_limits<int64_t>::min(),
                                          std::numeric_limits<int64_t>::min()});
    while (it != index_.end() && it->first.context_id == context_id) {
      repair_queue_.erase(it->first);
      it = index_.erase(it);
    }
  }
  for (const auto& node : nodes_) {
    if (node->removed.load() || node->down.load()) {
      continue;  // a down node's leftovers are trimmed by Balance after recovery
    }
    node->io->DeleteContext(context_id);
  }
}

bool DistributedColdBackend::DeleteChunk(const ChunkKey& key) {
  bool existed = false;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      existed = it->second.committed;
      index_.erase(it);
    }
    repair_queue_.erase(key);
  }
  for (const auto& node : nodes_) {
    if (node->removed.load() || node->down.load()) {
      continue;
    }
    node->io->DeleteChunk(key);
  }
  return existed;
}

std::vector<std::pair<ChunkKey, int64_t>> DistributedColdBackend::ListChunks() const {
  std::lock_guard<std::mutex> lk(index_mu_);
  std::vector<std::pair<ChunkKey, int64_t>> out;
  out.reserve(index_.size());
  for (const auto& [key, e] : index_) {
    if (e.committed) {
      out.emplace_back(key, e.size);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Repair plane
// ---------------------------------------------------------------------------

bool DistributedColdBackend::RepairChunkInternal(const ChunkKey& key,
                                                 int64_t* copies_written) {
  int64_t size = 0;
  uint64_t gen = 0;
  std::map<int, uint64_t> copies;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = index_.find(key);
    if (it == index_.end() || !it->second.committed) {
      repair_queue_.erase(key);  // deleted or never landed: nothing to restore
      return true;
    }
    size = it->second.size;
    gen = it->second.gen;
    copies = it->second.copies;
  }

  const auto table = placement();
  const std::vector<int> targets = WriteTargets(key, *table, size);

  // Source a verified current-generation copy.
  std::vector<uint8_t> scratch(static_cast<size_t>(size));
  bool sourced = false;
  std::set<int> valid;
  for (const int n : CandidateHolders(key, *table, gen, copies)) {
    if (!NodeReadable(n)) {
      continue;
    }
    if (nodes_[static_cast<size_t>(n)]->io->ReadChunk(key, scratch.data(), size) == size) {
      sourced = true;
      valid.insert(n);
      break;
    }
  }
  if (!sourced) {
    return false;  // every reachable copy gone or corrupt: stalled, stays queued
  }

  // Open the repair window (seqlock vs concurrent writers of this key).
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = index_.find(key);
    if (it == index_.end() || it->second.gen != gen) {
      return true;  // superseded before we wrote anything
    }
    ++it->second.repair_epoch;
    ++it->second.repairs_inflight;
  }

  int64_t written = 0;
  std::vector<int> wrote_to;
  for (const int n : targets) {
    if (valid.count(n)) {
      continue;
    }
    InstrumentedBackend* io = nodes_[static_cast<size_t>(n)]->io.get();
    auto cit = copies.find(n);
    if (cit != copies.end() && cit->second == gen) {
      // The node claims a current copy — verify before rewriting.
      std::vector<uint8_t> check(static_cast<size_t>(size));
      if (io->ReadChunk(key, check.data(), size) == size) {
        valid.insert(n);
        continue;
      }
    }
    if (io->WriteChunk(key, scratch.data(), size)) {
      valid.insert(n);
      wrote_to.push_back(n);
      ++written;
    }
  }

  bool resolved = false;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      // Deleted mid-repair: our writes left ghosts Balance will trim.
      resolved = true;
    } else {
      IndexEntry& e = it->second;
      ++e.repair_epoch;
      --e.repairs_inflight;
      if (e.gen != gen) {
        // A writer overlapped. It redoes its own copies on seeing our epoch
        // bump, but any node WE wrote may hold our stale bytes under its
        // commit — drop those claims and let the next pass re-verify them.
        for (const int n : wrote_to) {
          auto cit = e.copies.find(n);
          if (cit != e.copies.end() && cit->second == e.gen) {
            e.copies.erase(cit);
          }
        }
        EnqueueRepairLocked(key);
        wake = true;
        resolved = true;  // this generation's repair is moot
      } else {
        for (const int n : valid) {
          e.copies[n] = gen;
        }
        // Re-validate against the CURRENT table and node flags, not the snapshot
        // this repair planned with: if a node came back up (or a drain swapped
        // the table) mid-repair, the placement we satisfied may no longer be the
        // placement the key needs — resolving on the stale view would erase a
        // re-enqueue (e.g. SetNodeUp's) and strand the key off its home nodes.
        const auto now = placement();
        const std::vector<int> now_targets = WriteTargets(key, *now, size);
        const int now_desired = DesiredReplication(*now);
        resolved = static_cast<int>(now_targets.size()) >= now_desired;
        for (const int n : now_targets) {
          resolved = resolved && valid.count(n) > 0;
        }
        if (resolved) {
          repair_queue_.erase(key);
        } else {
          EnqueueRepairLocked(key);  // placement moved under us: another pass
          wake = true;
        }
        if (written > 0) {
          re_replicated_chunks_.fetch_add(written, std::memory_order_relaxed);
          if (copies_written != nullptr) {
            *copies_written += written;
          }
        }
      }
    }
  }
  repaired_cv_.notify_all();  // writers may be waiting for the window to close
  if (wake) {
    repair_cv_.notify_all();
  }
  return resolved;
}

int64_t DistributedColdBackend::RunRepairPass() {
  std::vector<ChunkKey> keys;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    keys.assign(repair_queue_.begin(), repair_queue_.end());
  }
  int64_t resolved = 0;
  for (const ChunkKey& key : keys) {
    if (RepairChunkInternal(key)) {
      ++resolved;
    }
  }
  return resolved;
}

void DistributedColdBackend::RepairLoop() {
  std::unique_lock<std::mutex> lk(index_mu_);
  while (!shutting_down_) {
    if (repair_queue_.empty() || !repair_dirty_) {
      // Empty, or only stalled chunks whose fault state hasn't changed — sleep
      // rather than spin; every enqueue and fault-state change sets the dirty
      // flag and notifies.
      repaired_cv_.notify_all();
      repair_cv_.wait(lk);
      continue;
    }
    repair_dirty_ = false;
    repair_inflight_ = true;
    lk.unlock();
    RunRepairPass();
    lk.lock();
    repair_inflight_ = false;
    repaired_cv_.notify_all();
  }
}

void DistributedColdBackend::RepairToConvergence() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(index_mu_);
      repair_dirty_ = false;
      if (repair_queue_.empty()) {
        return;
      }
    }
    if (RunRepairPass() == 0) {
      return;  // only stalled chunks remain
    }
  }
}

void DistributedColdBackend::Quiesce() {
  if (options_.background_repair) {
    std::unique_lock<std::mutex> lk(index_mu_);
    repair_cv_.notify_all();
    repaired_cv_.wait(lk, [&] {
      return !repair_inflight_ && (repair_queue_.empty() || !repair_dirty_);
    });
  } else {
    RepairToConvergence();
  }
}

// ---------------------------------------------------------------------------
// Fault injection / operator verbs
// ---------------------------------------------------------------------------

bool DistributedColdBackend::SetNodeDown(int node) {
  if (node < 0 || node >= num_nodes() || nodes_[static_cast<size_t>(node)]->removed.load()) {
    return false;
  }
  nodes_[static_cast<size_t>(node)]->down.store(true);
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    for (const auto& [key, e] : index_) {
      if (e.copies.count(node) > 0) {
        repair_queue_.insert(key);  // spill copies onto the next walk nodes
      }
    }
    repair_dirty_ = true;
  }
  repair_cv_.notify_all();
  return true;
}

bool DistributedColdBackend::SetNodeUp(int node) {
  if (node < 0 || node >= num_nodes() || nodes_[static_cast<size_t>(node)]->removed.load()) {
    return false;
  }
  nodes_[static_cast<size_t>(node)]->down.store(false);
  const auto table = placement();
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    for (const auto& [key, e] : index_) {
      if (!e.committed || !table->IsHome(key, node, options_.replication)) {
        continue;
      }
      auto cit = e.copies.find(node);
      if (cit == e.copies.end() || cit->second != e.gen) {
        repair_queue_.insert(key);  // converge back onto the recovered home
      }
    }
    repair_dirty_ = true;  // also retries anything stalled on this node being down
  }
  repair_cv_.notify_all();
  return true;
}

bool DistributedColdBackend::Drain(int node) {
  if (node < 0 || node >= num_nodes()) {
    return false;
  }
  Node& n = *nodes_[static_cast<size_t>(node)];
  if (n.removed.load() || n.down.load()) {
    return false;
  }
  {
    std::lock_guard<std::mutex> plk(placement_mu_);
    if (!placement_->HasNode(node) || placement_->num_nodes() <= 1) {
      return false;  // unknown to placement, or the last node standing
    }
    // Order matters: mark draining (new writes stop landing here) before the
    // table swap so no writer holding the OLD table picks this node after we
    // start evacuating.
    n.draining.store(true);
    placement_ = std::make_shared<const PlacementTable>(placement_->Without(node));
  }

  // Flush in-flight writers: once this exclusive section is acquired, every
  // writer that picked targets from the old table has committed, so no write can
  // land bytes on the node after the evacuation sweep below.
  { std::unique_lock<std::shared_mutex> flush(write_barrier_); }

  // Queue everything the node holds; it keeps serving reads while the repair
  // plane re-replicates onto the survivors.
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    for (const auto& [key, e] : index_) {
      if (e.copies.count(node) > 0) {
        repair_queue_.insert(key);
      }
    }
    repair_dirty_ = true;
  }
  repair_cv_.notify_all();

  // Converge on the caller thread (the background worker, when present, shares
  // the load; progress is judged on the queue, not on who repaired what).
  size_t last_remaining = std::numeric_limits<size_t>::max();
  for (;;) {
    std::vector<ChunkKey> remaining;
    {
      std::lock_guard<std::mutex> lk(index_mu_);
      for (const auto& [key, e] : index_) {
        // Only a CURRENT-generation copy pins the drain. A stale-gen claim means
        // a writer is mid-flight on this key: its commit replaces the copy set
        // (node excluded, it is off the table) without any help from us — and a
        // repairer could not source that claimed-but-uncommitted generation
        // anyway, so counting such keys here reads as spurious no-progress.
        const auto cit = e.copies.find(node);
        if (cit != e.copies.end() && cit->second == e.gen &&
            repair_queue_.count(key) > 0) {
          remaining.push_back(key);
        }
      }
    }
    if (remaining.empty()) {
      break;
    }
    int64_t resolved = 0;
    for (const ChunkKey& key : remaining) {
      if (RepairChunkInternal(key)) {
        ++resolved;
      }
    }
    if (resolved == 0 && remaining.size() >= last_remaining) {
      // Nothing can move (survivors down or full). Leave the node draining but
      // serving; a later Drain call can finish the evacuation.
      return false;
    }
    last_remaining = remaining.size();
  }

  // Evacuated: drop the node's claims, wipe its store, retire it.
  std::vector<ChunkKey> trim;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    for (auto& [key, e] : index_) {
      if (e.copies.erase(node) > 0) {
        trim.push_back(key);
      }
    }
  }
  for (const ChunkKey& key : trim) {
    n.io->DeleteChunk(key);
  }
  for (const auto& [key, size] : n.store->ListChunks()) {
    n.io->DeleteChunk(key);  // uncommitted strays
  }
  n.removed.store(true);
  n.draining.store(false);
  return true;
}

int64_t DistributedColdBackend::Balance() {
  const auto table = placement();
  int64_t moves = 0;

  // 1) Restore missing home copies.
  std::vector<ChunkKey> keys;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    keys.reserve(index_.size());
    for (const auto& [key, e] : index_) {
      if (e.committed) {
        keys.push_back(key);
      }
    }
  }
  for (const ChunkKey& key : keys) {
    RepairChunkInternal(key, &moves);
  }

  // 2) Trim strays: stale generations, ghosts the index never committed, and
  //    spill copies on non-home nodes once every home target holds a copy.
  for (const auto& node : nodes_) {
    if (node->removed.load() || node->down.load()) {
      continue;
    }
    for (const auto& [key, size] : node->store->ListChunks()) {
      bool trim_it = false;
      {
        std::lock_guard<std::mutex> lk(index_mu_);
        auto it = index_.find(key);
        if (it == index_.end()) {
          trim_it = true;  // ghost of a failed or superseded write
        } else if (it->second.committed) {
          IndexEntry& e = it->second;
          auto cit = e.copies.find(node->id);
          if (cit == e.copies.end() || cit->second != e.gen) {
            trim_it = true;  // stale or unrecorded copy
          } else if (!table->IsHome(key, node->id, options_.replication)) {
            const std::vector<int> targets = WriteTargets(key, *table, e.size);
            bool home_full = static_cast<int>(targets.size()) >= DesiredReplication(*table);
            for (const int t : targets) {
              auto tit = e.copies.find(t);
              home_full = home_full && tit != e.copies.end() && tit->second == e.gen;
            }
            if (home_full) {
              e.copies.erase(cit);
              trim_it = true;
            }
          }
          if (trim_it) {
            ++e.repair_epoch;  // open a window so a racing writer redoes
            ++e.repairs_inflight;
          }
        }
        // !committed: a write is mid-flight — leave its bytes alone.
      }
      if (!trim_it) {
        continue;
      }
      node->io->DeleteChunk(key);
      ++moves;
      bool requeue = false;
      {
        std::lock_guard<std::mutex> lk(index_mu_);
        auto it = index_.find(key);
        if (it != index_.end()) {
          if (it->second.repairs_inflight > 0) {
            ++it->second.repair_epoch;
            --it->second.repairs_inflight;
          }
          auto cit = it->second.copies.find(node->id);
          if (cit != it->second.copies.end()) {
            // A racing write re-landed a copy here between our check and the
            // delete; treat it as lost and let repair restore it.
            it->second.copies.erase(cit);
            EnqueueRepairLocked(key);
            requeue = true;
          }
        }
      }
      repaired_cv_.notify_all();
      if (requeue) {
        repair_cv_.notify_all();
      }
    }
  }
  return moves;
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

DistributedColdBackend::ReplicationStatus DistributedColdBackend::CheckReplication(
    const ChunkKey& key) const {
  ReplicationStatus st;
  int64_t size = 0;
  uint64_t gen = 0;
  std::map<int, uint64_t> copies;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = index_.find(key);
    if (it == index_.end() || !it->second.committed) {
      return st;
    }
    size = it->second.size;
    gen = it->second.gen;
    copies = it->second.copies;
  }
  const auto table = placement();
  st.home = table->ReplicasFor(key, options_.replication);
  std::vector<uint8_t> scratch(static_cast<size_t>(size));
  for (const int n : st.home) {
    auto cit = copies.find(n);
    const bool claims = cit != copies.end() && cit->second == gen;
    if (!claims || !NodeReadable(n)) {
      ++st.missing_copies;  // no current copy, or the node can't serve it
      continue;
    }
    const int64_t got =
        nodes_[static_cast<size_t>(n)]->io->ReadChunk(key, scratch.data(), size);
    if (got == size) {
      ++st.healthy_copies;
    } else if (got == kChunkCorrupt) {
      ++st.corrupt_copies;
    } else {
      ++st.missing_copies;
    }
  }
  for (const auto& [n, g] : copies) {
    if (g == gen &&
        std::find(st.home.begin(), st.home.end(), n) == st.home.end()) {
      st.stray.push_back(n);
    }
  }
  return st;
}

bool DistributedColdBackend::RepairChunk(const ChunkKey& key) {
  RepairChunkInternal(key);
  const ReplicationStatus st = CheckReplication(key);
  return !st.home.empty() && st.FullyReplicated();
}

std::vector<DistributedColdBackend::NodeInfo> DistributedColdBackend::NodeTable() const {
  std::vector<NodeInfo> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    NodeInfo info;
    info.id = node->id;
    info.up = !node->down.load();
    info.draining = node->draining.load();
    info.removed = node->removed.load();
    info.capacity_bytes = node->capacity_bytes.load(std::memory_order_relaxed);
    const StorageStats s = node->store->Stats();
    info.chunks = s.chunks_stored;
    info.bytes = s.bytes_stored;
    out.push_back(info);
  }
  return out;
}

int DistributedColdBackend::num_live_nodes() const {
  int live = 0;
  for (const auto& node : nodes_) {
    if (!node->removed.load()) {
      ++live;
    }
  }
  return live;
}

bool DistributedColdBackend::IsNodeDown(int node) const {
  CHECK(node >= 0 && node < num_nodes());
  return nodes_[static_cast<size_t>(node)]->down.load();
}

InstrumentedBackend* DistributedColdBackend::node_instrument(int node) const {
  CHECK(node >= 0 && node < num_nodes());
  return nodes_[static_cast<size_t>(node)]->io.get();
}

StorageBackend* DistributedColdBackend::node_store(int node) const {
  CHECK(node >= 0 && node < num_nodes());
  return nodes_[static_cast<size_t>(node)]->store.get();
}

void DistributedColdBackend::set_node_capacity(int node, int64_t bytes) {
  CHECK(node >= 0 && node < num_nodes());
  nodes_[static_cast<size_t>(node)]->capacity_bytes.store(bytes,
                                                          std::memory_order_relaxed);
}

StorageStats DistributedColdBackend::Stats() const {
  StorageStats s;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    for (const auto& [key, e] : index_) {
      if (e.committed) {
        ++s.chunks_stored;
        s.bytes_stored += e.size;
      }
    }
    s.under_replicated_chunks = static_cast<int64_t>(repair_queue_.size());
  }
  s.total_writes = total_writes_.load(std::memory_order_relaxed);
  s.total_reads = total_reads_.load(std::memory_order_relaxed);
  s.cold_hits = s.total_reads;
  s.cold_hit_bytes = read_bytes_.load(std::memory_order_relaxed);
  s.failover_reads = failover_reads_.load(std::memory_order_relaxed);
  s.degraded_writes = degraded_writes_.load(std::memory_order_relaxed);
  s.re_replicated_chunks = re_replicated_chunks_.load(std::memory_order_relaxed);
  s.crc_failures = crc_failures_.load(std::memory_order_relaxed);
  for (const auto& node : nodes_) {
    if (node->removed.load()) {
      continue;
    }
    if (node->down.load()) {
      ++s.nodes_down;
    }
    s.crc_checked_bytes += node->store->Stats().crc_checked_bytes;
  }
  return s;
}

std::string DistributedColdBackend::Name() const {
  return "distributed(nodes=" + std::to_string(num_nodes()) +
         ",r=" + std::to_string(options_.replication) + ")";
}

}  // namespace hcache
