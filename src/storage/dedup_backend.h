// Content-addressed deduplication layer under StorageBackend (ROADMAP item 2).
//
// Millions of users put the same system prompt or retrieved document in front of
// their contexts, so the hidden-state chunks of those prefix tokens are byte-identical
// across sessions — yet every logical (context, layer, chunk) key used to store its
// own copy. DedupBackend splits the key space in two:
//
//   logical index   (context_id, layer, chunk_index) -> PhysicalId
//   physical store  PhysicalId -> refcounted chunk bytes in the wrapped backend
//
// A write hashes its content (128-bit composite riding the SIMD CRC/hash dispatch
// tiers — see ContentHash below) and, when a physical chunk with the same hash and
// size already exists, points the logical key at it instead of storing a second copy
// (`dedup_hits` / `dedup_bytes_saved` in StorageStats). Delete and overwrite only
// drop a reference; the bytes leave the wrapped backend when the last referent does.
//
// Correctness before savings: a hash match is treated as a *hint*, not as proof.
// With `DedupOptions::verify_bytes` (the default) a dedup hit reads the candidate
// back and byte-compares it against the incoming write; a true collision — however
// astronomically unlikely at 128 bits — chains to a fresh physical slot
// (`collision_chains`) instead of silently aliasing two users' states, the exact
// failure mode the old SharedPrefixManager length-only guard had. Deployments that
// accept the 2^-64 risk can disable verification and keep dedup-hit writes IO-free.
//
// The layer composes with every other plane: it wraps Memory/File/Tiered/Distributed
// (dedup-over-distributed = fleet-wide single-instancing of the replicated cold
// plane) and can itself sit under TieredBackend, or above it — dedup(tiered(...))
// means the DRAM hot tier holds only *unique* chunks, so a popularity-skewed RAG
// working set fits where the duplicated one spilled (bench_ext_dedup measures the
// DRAM-hit lift). The wrapped backend's key namespace belongs exclusively to this
// layer.
//
// fsck speaks dedup: AuditIndex checks the refcount invariants — a physical chunk
// with zero referents is an orphan (repair = delete the bytes), a referent whose
// physical chunk is gone is corrupt (repair = drop the logical entry so reads miss
// and the caller falls back to recompute). RunFsck recognizes a DedupBackend and
// scans the *physical* store (each unique chunk CRC-verified once), then audits.
#ifndef HCACHE_SRC_STORAGE_DEDUP_BACKEND_H_
#define HCACHE_SRC_STORAGE_DEDUP_BACKEND_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/storage_backend.h"

namespace hcache {

// 128-bit content hash: two independently seeded 64-bit multiply-mix lanes over the
// payload, with the SIMD-dispatched CRC32C (codec_simd.h's crc32c kernel — the same
// ~24 GB/s/core tier the integrity plane rides) folded into the high lane and the
// length into the low lane. Collision probability between any two distinct chunks is
// ~2^-128 before verification even runs.
struct ContentHash {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend auto operator<=>(const ContentHash&, const ContentHash&) = default;
};

ContentHash HashChunkContent(const void* data, int64_t bytes);

struct DedupOptions {
  // Byte-compare dedup-hit writes against the stored candidate before sharing it.
  // On (default): a hash collision can never alias two contexts' states — it chains
  // to a fresh physical chunk instead. Off: trust the 128-bit hash; dedup-hit writes
  // become pure metadata operations (no read-back IO).
  bool verify_bytes = true;
};

// One finding of an AuditIndex run (fsck's dedup leg).
struct DedupAuditFinding {
  enum class Kind {
    kOrphanPhysical,    // physical chunk in the wrapped store with no index entry
    kMissingPhysical,   // index entry whose physical chunk is gone from the store
    kRefcountDrift,     // entry refcount != recounted logical referents
  };
  Kind kind = Kind::kOrphanPhysical;
  ChunkKey physical_key;   // key in the WRAPPED backend's namespace
  int64_t bytes = 0;
  int64_t refs_indexed = 0;   // refcount the index carried
  int64_t refs_recounted = 0; // referents actually found in the logical map
  bool repaired = false;
};

struct DedupAuditReport {
  int64_t logical_chunks = 0;
  int64_t unique_chunks = 0;
  int64_t orphan_physical = 0;
  int64_t missing_physical = 0;
  int64_t refcount_drift = 0;
  std::vector<DedupAuditFinding> findings;

  bool Healthy() const {
    return orphan_physical == 0 && missing_physical == 0 && refcount_drift == 0;
  }
};

class DedupBackend : public StorageBackend {
 public:
  // `base` must outlive this backend and is used exclusively by it: every key this
  // layer writes into `base` is a physical-id key, and AuditIndex treats any other
  // resident chunk as an orphan.
  DedupBackend(StorageBackend* base, const DedupOptions& options = {});
  ~DedupBackend() override;

  bool WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) override;
  int64_t ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const override;
  // Batched read: logical keys translate to physical keys under one index lock,
  // then the whole batch goes to the wrapped backend as ONE submission (duplicate
  // logical keys of one shared chunk become duplicate physical requests, which the
  // ReadChunks contract explicitly allows).
  void ReadChunks(std::span<ChunkReadRequest> requests,
                  const BatchCompletion& done = {}) const override;
  void ReadChunksUnverified(std::span<ChunkReadRequest> requests,
                            const BatchCompletion& done = {}) const override;
  int64_t ReadChunkUnverified(const ChunkKey& key, void* buf,
                              int64_t buf_bytes) const override;
  bool HasChunk(const ChunkKey& key) const override;
  int64_t ChunkSize(const ChunkKey& key) const override;
  void DeleteContext(int64_t context_id) override;
  bool DeleteChunk(const ChunkKey& key) override;
  // The LOGICAL view: every (context, layer, chunk) key with its stored size, shared
  // or not — consumers above the seam must not be able to tell dedup happened.
  std::vector<std::pair<ChunkKey, int64_t>> ListChunks() const override;
  StorageStats Stats() const override;
  std::string Name() const override;
  void Quiesce() override;

  // --- dedup-specific surface (fsck, benches, tests) ---

  StorageBackend* base() const { return base_; }

  // Physical footprint: encoded bytes the wrapped backend actually holds for the
  // current logical set (== logical bytes minus sharing).
  int64_t PhysicalBytes() const;

  // Physical (wrapped-namespace) keys with sizes — what a physical scan walks.
  std::vector<std::pair<ChunkKey, int64_t>> ListPhysicalChunks() const;

  // Verifies the refcount invariant (fsck's dedup leg): every physical chunk has
  // >= 1 referent and exists in the wrapped store, and every index refcount equals
  // the recounted referents. With `repair`: orphans are deleted from the wrapped
  // store, entries with missing physicals are dropped (their logical keys then read
  // as misses -> recompute fallback), drifted refcounts are reset to the recount.
  DedupAuditReport AuditIndex(bool repair = false);

  // True hash collisions caught by verify_bytes and diverted to chain slots.
  int64_t collision_chains() const;

  // Test hook: overrides the content hash so two distinct payloads can be forced
  // onto one hash and the verify_bytes collision chain exercised. nullptr restores
  // the production hash. Not thread-safe against in-flight writes.
  void SetContentHashForTest(std::function<ContentHash(const void*, int64_t)> fn) {
    content_hash_for_test_ = std::move(fn);
  }

 private:
  struct PhysId {
    ContentHash hash;
    int64_t chain = 0;  // collision-chain slot; 0 for every non-colliding chunk

    friend auto operator<=>(const PhysId&, const PhysId&) = default;
  };

  enum class PhysState { kWriting, kReady, kDeleting };

  struct PhysEntry {
    int64_t bytes = 0;
    int64_t refs = 0;  // logical referents
    int64_t pins = 0;  // in-flight reads; deletion defers until the last unpin
    PhysState state = PhysState::kWriting;
  };

  struct LogicalEntry {
    PhysId phys;
    int64_t bytes = 0;
  };

  static ChunkKey PhysicalKey(const PhysId& id);

  // Drops one reference; when the last referent and pin are gone, deletes the
  // physical chunk from the wrapped backend (releasing mu_ around the IO).
  void DecrefLocked(std::unique_lock<std::mutex>& lock, const PhysId& id);
  void MaybeDeletePhysicalLocked(std::unique_lock<std::mutex>& lock, const PhysId& id);
  void UnpinLocked(std::unique_lock<std::mutex>& lock, const PhysId& id);

  // Shared body of the verified / unverified batched reads.
  void ReadChunksImpl(std::span<ChunkReadRequest> requests, const BatchCompletion& done,
                      bool verify) const;

  StorageBackend* base_;
  DedupOptions options_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;  // signals kWriting/kDeleting transitions
  std::map<ChunkKey, LogicalEntry> logical_;
  std::map<PhysId, PhysEntry> phys_;
  int64_t logical_bytes_ = 0;
  int64_t physical_bytes_ = 0;
  int64_t total_writes_ = 0;
  int64_t dedup_hits_ = 0;
  int64_t dedup_bytes_saved_ = 0;
  int64_t collision_chains_ = 0;  // true hash collisions caught by verify_bytes
  std::function<ContentHash(const void*, int64_t)> content_hash_for_test_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_DEDUP_BACKEND_H_
