// Chunk precision codec: fused convert kernels for the storage plane's hot paths.
//
// The paper's restoration model is bound by bytes moved per token (§3.2), and its §7
// quantization note observes the hidden states tolerate reduced precision. This module
// turns that into the storage plane's element encodings (layout.h's ChunkCodec):
//
//   save path   — EncodeRowsInto converts FP32 activation rows straight into the
//                 saver's staging bytes during the stage-1 snapshot, so a sealed chunk
//                 is already encoded when it reaches the backend (no second pass).
//   restore path — DecodeChunkRange converts stored rows straight into the caller's
//                 destination floats (a Tensor row range, or the K/V halves of an
//                 interleaved KV chunk), so dequantization rides the same pass that
//                 lands data in the projection GEMM's input — no intermediate FP32
//                 chunk tensor is ever materialized.
//
// The element loops dispatch through codec_simd.h's runtime-selected kernel table
// (scalar reference, or hand-written F16C/AVX2/AVX-512 paths — HCACHE_SIMD overrides),
// and they thread across rows via ThreadPool::ParallelFor once the chunk is large
// enough to amortize dispatch. All conversions are deterministic AND bit-identical
// across ISA tiers (pinned by tests/storage/codec_matrix_test.cc): the same input
// bytes decode to the same floats on every backend, at every thread count, on every
// CPU — which keeps restored state bit-stable across File/Memory/Tiered stores and
// across heterogeneous replicas.
#ifndef HCACHE_SRC_STORAGE_CODEC_H_
#define HCACHE_SRC_STORAGE_CODEC_H_

#include <cstdint>

#include "src/storage/layout.h"

namespace hcache {

// --- scalar FP16 conversion (IEEE binary16, round-to-nearest-even) ---
//
// Encode saturates to ±65504 (max finite half) instead of producing infinities —
// hidden states are O(1..100) in practice, and a saturating codec keeps a pathological
// activation from poisoning downstream projections with non-finite values. NaN is
// preserved as a half NaN. Decode is exact (every half value is representable in FP32).
uint16_t Fp32ToFp16Bits(float f);
float Fp16BitsToFp32(uint16_t bits);

// The 65536-entry half->float table the scalar decode tier reads (built once,
// thread-safe). Exposed so the matrix test can assert the vector tiers' vcvtph2ps
// output is LUT-equivalent for every half pattern. Decode quiets signaling half
// NaNs (payload | 0x200), matching the hardware conversion exactly.
const float* Fp16DecodeTable();

// Largest absolute round-trip error FP16 encoding can introduce for a finite input
// within half range: 0.5 ulp of the half-precision result (2^-11 relative for normals,
// 2^-25 absolute in the subnormal range).
float Fp16UlpOf(float decoded);

// --- INT8 per-row symmetric quantization (shared with core/quantize.cc) ---
//
// scale = max|row|/127 (1.0 for an all-zero row); values are round-half-away-from-zero
// and clamped to [-127, 127]. Round-trip error ≤ scale/2 per element — the same bound
// quantize.h's RowErrorBound reports.
void Int8EncodeRow(const float* src, int64_t cols, float* scale_out, int8_t* values_out);
void Int8DecodeRow(const int8_t* values, float scale, int64_t cols, float* dst);

// --- chunk encode ---

// Fills a ChunkHeader for `rows` x `cols` under `codec` at `dst` (≥ sizeof(ChunkHeader)
// bytes). MUST be called after the rows were encoded: the v2 header checksums the
// rows * CodecRowBytes payload that follows it (encoding never touches the header
// region, so sealing the header last is always safe).
void WriteChunkHeader(ChunkCodec codec, int64_t rows, int64_t cols, void* dst);

// Encodes `rows` rows of `cols` floats (row r at src + r * src_stride) into
// consecutive encoded rows at `payload` (stride CodecRowBytes(codec, cols)); `payload`
// typically points just past the header, at any row boundary of a staging buffer.
// Threads across rows when rows * cols is large enough to pay for dispatch; otherwise
// runs inline (the decode-phase snapshot of a single token row stays allocation-free).
void EncodeRowsInto(ChunkCodec codec, const float* src, int64_t src_stride, int64_t rows,
                    int64_t cols, uint8_t* payload);

// --- chunk decode ---

// What a stored chunk contains. header_bytes is 0 for legacy (v0, headerless raw
// FP32) chunks, kChunkHeaderBytesV1 for v1, sizeof(ChunkHeader) for v2.
struct ChunkInfo {
  ChunkCodec codec = ChunkCodec::kFp32;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t header_bytes = 0;
  // v2 only: the stored payload checksum (has_crc == true). Verification against the
  // actual payload bytes is the read path's job (integrity.h's VerifyChunkBytes) —
  // InspectChunk validates the header's own CRC but never walks the payload.
  uint32_t payload_crc32c = 0;
  bool has_crc = false;
};

// Parses a stored chunk. A chunk is *encoded* when it starts with a valid header
// (magic, known version and codec, size == EncodedChunkBytes(codec, rows, cols); a v2
// header must additionally pass its own header CRC); anything else is treated as a
// legacy raw-FP32 chunk whose row width `legacy_cols` the caller supplies (bytes must
// then be a whole number of rows). Returns false when the bytes fit neither form.
bool InspectChunk(const void* data, int64_t bytes, int64_t legacy_cols, ChunkInfo* info);

// Decodes the rectangle rows [row0, row1) x cols [col0, col1) of an inspected chunk
// into dst (row-major, leading dimension dst_stride floats). Column sub-ranges let the
// KV read path split an interleaved [K | V] row directly into the two destination
// tensors. INT8 rows apply their per-row scale regardless of the column range.
// Threads across rows like EncodeRowsInto.
void DecodeChunkRange(const void* data, int64_t bytes, const ChunkInfo& info, int64_t row0,
                      int64_t row1, int64_t col0, int64_t col1, float* dst,
                      int64_t dst_stride);

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_CODEC_H_
