// Offline integrity checker for chunk stores (the `hcache-fsck` tool's engine).
//
// Walks every chunk a backend can enumerate (ListChunks), reads it back UNVERIFIED,
// and classifies it:
//
//   kClean      — v2 header, payload CRC32C matches (bit-exact as written).
//   kUnverified — parses but carries no checksum (v1 header or legacy headerless
//                 FP32; also opaque chunks like the serving plane's descriptors).
//                 Nothing to verify against; reported so operators can see how much
//                 of the store predates the v2 format.
//   kPartial    — the header parses and claims more payload than the chunk holds: a
//                 torn/truncated write (lost tail).
//   kCorrupt    — chunk bears the magic but fails its header or payload CRC (or is
//                 internally inconsistent): a media fault or bit rot.
//
// With `repair` set, corrupt and partial chunks are *quarantined* — deleted from the
// backend so the read path reports them absent (-1) instead of corrupt (-2), which
// turns a per-read CRC failure into an ordinary recompute-from-tokens miss.
// Unverified chunks are never touched: no checksum means no evidence of damage.
//
// Against a DistributedColdBackend the scan goes deeper: every node's store is
// walked separately (per-node counts in the report), and a logical pass flags
// chunks below their home replica count (kUnderReplicated). There `repair` does
// better than quarantine — damaged copies are deleted, then the chunk is
// re-replicated from a surviving healthy copy (RepairChunk), so fsck restores R
// instead of merely amputating.
//
// Against a DedupBackend the scan walks the PHYSICAL store (each unique chunk
// CRC-classified once, however many logical keys share it) and then audits the
// refcount invariant: a physical chunk with zero referents is an orphan
// (kDedupOrphan; repair deletes the bytes), a referent whose physical chunk is
// gone is corrupt (kDedupMissing; repair drops the logical entries so reads miss
// and callers fall back to recompute), and an index refcount that disagrees with
// the recounted referents is drift (kDedupDrift; repair resets it). A corrupt
// physical chunk quarantined by the scan is then surfaced as kDedupMissing by the
// audit in the same run — quarantine composes with the recompute fallback.
//
// `scan_dirs` additionally sweeps filesystem directories for orphaned `*.tmp` files —
// the residue of a writer that died between open and rename. These are never valid
// chunks (the atomic-rename protocol guarantees a published chunk is complete), so
// repair unlinks them.
//
// Pure library; examples/hcache_fsck.cpp wraps it in a CLI.
#ifndef HCACHE_SRC_STORAGE_FSCK_H_
#define HCACHE_SRC_STORAGE_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/layout.h"
#include "src/storage/storage_backend.h"

namespace hcache {

enum class FsckClass {
  kClean = 0,
  kUnverified = 1,
  kPartial = 2,
  kCorrupt = 3,
  // Distributed only: the chunk's bytes may be fine somewhere, but it sits below
  // its home replica count (missing or corrupt home copies).
  kUnderReplicated = 4,
  // Dedup only (see the header comment): refcount-invariant violations.
  kDedupOrphan = 5,   // physical chunk with zero logical referents
  kDedupMissing = 6,  // logical referents whose physical chunk is gone
  kDedupDrift = 7,    // index refcount != recounted referents
};

const char* FsckClassName(FsckClass c);

struct FsckOptions {
  // Quarantine damaged chunks (delete corrupt/partial from the backend) and unlink
  // orphaned temp files found under scan_dirs. Off = report-only.
  bool repair = false;
  // Filesystem directories to sweep for `*.tmp` orphans (a FileBackend's device
  // dirs, typically — pass FileBackend::device_dirs()). Walked recursively.
  std::vector<std::string> scan_dirs;
};

// One damaged (or swept) object, for the report's detail listing.
struct FsckFinding {
  ChunkKey key;            // zeroed for orphaned temp files
  int64_t bytes = 0;       // stored size
  FsckClass klass = FsckClass::kCorrupt;
  bool repaired = false;   // deleted/unlinked/re-replicated by this run
  std::string detail;      // human-readable cause (or the orphan's path)
  int node = -1;           // owning storage node (distributed scans only)
};

// Per-node tallies of a distributed scan (one JSON object per node under "nodes").
struct FsckNodeReport {
  int node = -1;
  bool up = true;
  bool draining = false;
  bool removed = false;
  int64_t chunks = 0;   // physical copies resident after the scan (and any repair)
  int64_t bytes = 0;
  int64_t corrupt = 0;  // damaged copies found on this node by this scan
};

struct FsckReport {
  int64_t chunks_scanned = 0;
  int64_t bytes_scanned = 0;
  int64_t clean = 0;
  int64_t unverified = 0;
  int64_t partial = 0;
  int64_t corrupt = 0;
  int64_t orphaned_temp_files = 0;
  int64_t under_replicated = 0;  // distributed scans: chunks below home replica count
  // Dedup scans: refcount-invariant violations (see FsckClass).
  int64_t dedup_orphans = 0;
  int64_t dedup_missing = 0;
  int64_t dedup_drift = 0;
  int64_t repaired = 0;  // quarantined chunks + unlinked orphans + re-replications
  std::vector<FsckFinding> findings;   // damaged chunks and orphans only
  std::vector<FsckNodeReport> nodes;   // distributed scans: per-node counts

  bool Healthy() const {
    return partial == 0 && corrupt == 0 && orphaned_temp_files == 0 &&
           under_replicated == 0 && dedup_orphans == 0 && dedup_missing == 0 &&
           dedup_drift == 0;
  }

  // Machine-readable single-object JSON (stable key order, findings inlined) —
  // what `hcache-fsck --json` prints for dashboards/CI to parse.
  std::string ToJson() const;
};

// Scans `backend` (and `options.scan_dirs`) and returns the classification report.
// Requires a backend whose ListChunks/ReadChunkUnverified are functional (memory,
// file, tiered, or an instrumented wrapper of those). A DistributedColdBackend is
// recognized (dynamic_cast) and gets the per-node + replication scan described
// above; a DedupBackend gets the physical scan + refcount audit (recursively
// distributed-aware when dedup wraps the replicated plane).
FsckReport RunFsck(StorageBackend* backend, const FsckOptions& options = {});

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_FSCK_H_
