#include "src/storage/codec_simd.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "src/common/logging.h"
#include "src/storage/codec.h"

#if defined(__GNUC__) && defined(__x86_64__)
#define HCACHE_CODEC_X86 1
// GCC 12's avx512 intrinsic wrappers pass an intentionally-undefined merge operand
// (_mm_undefined_si128) to the masked builtins, which -Wmaybe-uninitialized flags
// when they inline into our kernels. Known false positive (GCC PR105593).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#else
#define HCACHE_CODEC_X86 0
#endif

namespace hcache {

namespace {

// --- scalar tier: the reference kernels every vector tier must match bit-for-bit ---

void Fp16EncodeScalar(const float* src, uint16_t* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = Fp32ToFp16Bits(src[i]);
  }
}

void Fp16DecodeScalar(const uint16_t* src, float* dst, int64_t n) {
  const float* lut = Fp16DecodeTable();
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = lut[src[i]];
  }
}

float MaxAbsScalar(const float* src, int64_t n) {
  float max_abs = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    // std::max(acc, NaN) keeps acc: NaN elements never win the scan.
    max_abs = std::max(max_abs, std::fabs(src[i]));
  }
  return max_abs;
}

void Int8QuantizeScalar(const float* src, float inv_scale, int8_t* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float v = std::round(src[i] * inv_scale);
    // NaN falls through both comparisons to 127 — the vector tiers replicate this
    // via the min/max NaN operand rules.
    dst[i] = static_cast<int8_t>(std::max(-127.0f, std::min(127.0f, v)));
  }
}

void Int8DequantizeScalar(const int8_t* src, float scale, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
}

// CRC32C reference: byte-wise table over the reflected Castagnoli polynomial
// 0x82F63B78 — the exact function the SSE4.2 crc32 instruction implements, so the
// hardware tier is bit-identical by construction (pinned by integrity_test).
const uint32_t* Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

uint32_t Crc32cScalar(uint32_t crc, const void* data, int64_t n) {
  const uint32_t* table = Crc32cTable();
  const auto* p = static_cast<const uint8_t*>(data);
  for (int64_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32cCopyScalar(uint32_t crc, const void* src, void* dst, int64_t n) {
  std::memcpy(dst, src, static_cast<size_t>(n));
  return Crc32cScalar(crc, src, n);
}

#if HCACHE_CODEC_X86

// ============================ kF16c (AVX1 + F16C + SSE4.1) ======================
//
// 256-bit float math; integer fixups stay 128-bit (AVX1 has no 256-bit integer
// ops). vcvtps2ph alone is NOT bit-identical to the scalar encode: it overflows
// finite >= 65520 to Inf (scalar saturates to 0x7bff) and preserves NaN payloads
// (scalar canonicalizes to sign|0x7e00). Both are repaired before/after the convert:
//   * finite overflow: clamp |x| to 65504 before converting (Inf is exempted so it
//     still encodes as Inf, matching scalar);
//   * NaN: rebuild sign|0x7e00 and blend it over the converted lanes that compared
//     unordered.
// Everything else (RNE, subnormals with default MXCSR, signed zero) matches exactly.

__attribute__((target("avx,f16c,sse4.1"))) inline __m128i
Fp16EncodeLanes8(__m256 x, __m256 abs_mask, __m256 overflow_at, __m256 max_finite,
                 __m256 inf, __m128i sign_half, __m128i nan_half) {
  const __m256 abs = _mm256_and_ps(x, abs_mask);
  const __m256 sign = _mm256_andnot_ps(abs_mask, x);
  // finite_ovf: |x| >= 65520 (the first value RNE would carry into 2^16) and not Inf.
  // Ordered compares leave NaN lanes untouched here; they are repaired below.
  const __m256 finite_ovf = _mm256_andnot_ps(
      _mm256_cmp_ps(abs, inf, _CMP_EQ_OQ), _mm256_cmp_ps(abs, overflow_at, _CMP_GE_OQ));
  const __m256 clamped = _mm256_blendv_ps(abs, max_finite, finite_ovf);
  __m128i h = _mm256_cvtps_ph(_mm256_or_ps(clamped, sign),
                              _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256i unord = _mm256_castps_si256(_mm256_cmp_ps(x, x, _CMP_UNORD_Q));
  // Narrow the 32-bit all-ones/all-zeros lane masks to 16 bits (packs saturates
  // -1 -> -1, 0 -> 0) and canonicalize NaN lanes to sign|0x7e00.
  const __m128i nan16 = _mm_packs_epi32(_mm256_castsi256_si128(unord),
                                        _mm256_extractf128_si256(unord, 1));
  const __m128i canon = _mm_or_si128(_mm_and_si128(h, sign_half), nan_half);
  return _mm_blendv_epi8(h, canon, nan16);
}

__attribute__((target("avx,f16c,sse4.1"))) void Fp16EncodeF16c(const float* src,
                                                               uint16_t* dst, int64_t n) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 overflow_at = _mm256_set1_ps(65520.0f);
  const __m256 max_finite = _mm256_set1_ps(65504.0f);
  const __m256 inf = _mm256_set1_ps(std::numeric_limits<float>::infinity());
  const __m128i sign_half = _mm_set1_epi16(static_cast<short>(0x8000));
  const __m128i nan_half = _mm_set1_epi16(0x7e00);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = Fp16EncodeLanes8(_mm256_loadu_ps(src + i), abs_mask, overflow_at,
                                       max_finite, inf, sign_half, nan_half);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) {
    dst[i] = Fp32ToFp16Bits(src[i]);
  }
}

// vcvtph2ps is exactly LUT-equivalent for all 65536 half patterns: normals, signed
// zeros, subnormals (normalized exactly), Inf, and NaN (payload << 13, signaling
// NaNs quieted — the scalar decode quiets them identically). No fixups needed.
__attribute__((target("avx,f16c"))) void Fp16DecodeF16c(const uint16_t* src, float* dst,
                                                        int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i,
        _mm256_cvtph_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i))));
  }
  const float* lut = Fp16DecodeTable();
  for (; i < n; ++i) {
    dst[i] = lut[src[i]];
  }
}

// vmaxps(a, b) returns b when either operand is NaN; accumulating with the fresh
// lane as the FIRST operand makes NaN elements keep the accumulator — the same
// "NaN never wins" rule as the scalar std::max scan. max is otherwise commutative
// and associative over the non-negative |x| values, so the vector reduction order
// is irrelevant to the result.
__attribute__((target("avx"))) float MaxAbsAvx(const float* src, int64_t n) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_max_ps(_mm256_and_ps(_mm256_loadu_ps(src + i), abs_mask), acc);
  }
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  float max_abs = _mm_cvtss_f32(m);
  for (; i < n; ++i) {
    max_abs = std::max(max_abs, std::fabs(src[i]));
  }
  return max_abs;
}

// Round-half-away-from-zero built from vroundps (half-to-even) plus an exact tie
// fixup: t = x - r is exact (Sterbenz), so t == +-0.5 identifies ties, which RNE
// rounded toward even and std::round wants away from zero. Ordered compares make
// NaN lanes skip the fixup; the min/max clamp then sends them to 127 exactly like
// the scalar std::max(-127, std::min(127, v)) chain (vminps/vmaxps return the
// SECOND operand on unordered, and the constant sits second in both).
__attribute__((target("avx,f16c,sse4.1"))) inline __m256
Int8QuantizeLanes8(__m256 x, __m256 half, __m256 one, __m256 hi, __m256 lo, __m256 zero) {
  const __m256 r = _mm256_round_ps(x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256 t = _mm256_sub_ps(x, r);
  const __m256 fix_up = _mm256_and_ps(_mm256_cmp_ps(t, half, _CMP_EQ_OQ),
                                      _mm256_cmp_ps(x, zero, _CMP_GT_OQ));
  const __m256 fix_dn =
      _mm256_and_ps(_mm256_cmp_ps(t, _mm256_sub_ps(zero, half), _CMP_EQ_OQ),
                    _mm256_cmp_ps(x, zero, _CMP_LT_OQ));
  __m256 v = _mm256_add_ps(r, _mm256_and_ps(fix_up, one));
  v = _mm256_sub_ps(v, _mm256_and_ps(fix_dn, one));
  return _mm256_max_ps(_mm256_min_ps(v, hi), lo);
}

__attribute__((target("avx,f16c,sse4.1"))) void Int8QuantizeF16c(const float* src,
                                                                 float inv_scale,
                                                                 int8_t* dst, int64_t n) {
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 hi = _mm256_set1_ps(127.0f);
  const __m256 lo = _mm256_set1_ps(-127.0f);
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_mul_ps(_mm256_loadu_ps(src + i), vinv);
    const __m256 v = Int8QuantizeLanes8(x, half, one, hi, lo, zero);
    // Clamped lanes are integral in [-127, 127]: the int32 convert is exact under
    // any MXCSR mode and both saturating packs are the identity.
    const __m256i vi = _mm256_cvtps_epi32(v);
    const __m128i p16 =
        _mm_packs_epi32(_mm256_castsi256_si128(vi), _mm256_extractf128_si256(vi, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), _mm_packs_epi16(p16, p16));
  }
  for (; i < n; ++i) {
    const float v = std::round(src[i] * inv_scale);
    dst[i] = static_cast<int8_t>(std::max(-127.0f, std::min(127.0f, v)));
  }
}

__attribute__((target("avx,sse4.1"))) void Int8DequantizeF16c(const int8_t* src,
                                                              float scale, float* dst,
                                                              int64_t n) {
  const __m256 vscale = _mm256_set1_ps(scale);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i w16 =
        _mm_cvtepi8_epi16(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i)));
    const __m128i d0 = _mm_cvtepi16_epi32(w16);
    const __m128i d1 = _mm_cvtepi16_epi32(_mm_srli_si128(w16, 8));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_set_m128i(d1, d0));
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(f, vscale));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
}

// ================================== kAvx2 =======================================
//
// Same F16C conversion semantics; the gains are 16-element encode/decode steps and
// 256-bit integer ops (one blend per 16 lanes on the encode NaN fixup, full-width
// widening loads on the int8 dequant).

// Saturating RNE convert of 8 lanes WITHOUT the NaN canonicalization (the AVX2
// caller repairs NaN across 16 lanes with a single 256-bit blend).
__attribute__((target("avx2,f16c"))) inline __m128i Fp16CvtLanes8Avx2(
    __m256 x, __m256 abs_mask, __m256 overflow_at, __m256 max_finite, __m256 inf) {
  const __m256 abs = _mm256_and_ps(x, abs_mask);
  const __m256 sign = _mm256_andnot_ps(abs_mask, x);
  const __m256 finite_ovf = _mm256_andnot_ps(
      _mm256_cmp_ps(abs, inf, _CMP_EQ_OQ), _mm256_cmp_ps(abs, overflow_at, _CMP_GE_OQ));
  const __m256 clamped = _mm256_blendv_ps(abs, max_finite, finite_ovf);
  return _mm256_cvtps_ph(_mm256_or_ps(clamped, sign),
                         _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
}

__attribute__((target("avx2,f16c"))) void Fp16EncodeAvx2(const float* src, uint16_t* dst,
                                                         int64_t n) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 overflow_at = _mm256_set1_ps(65520.0f);
  const __m256 max_finite = _mm256_set1_ps(65504.0f);
  const __m256 inf = _mm256_set1_ps(std::numeric_limits<float>::infinity());
  const __m256i sign_half = _mm256_set1_epi16(static_cast<short>(0x8000));
  const __m256i nan_half = _mm256_set1_epi16(0x7e00);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 x0 = _mm256_loadu_ps(src + i);
    const __m256 x1 = _mm256_loadu_ps(src + i + 8);
    const __m256i h = _mm256_set_m128i(
        Fp16CvtLanes8Avx2(x1, abs_mask, overflow_at, max_finite, inf),
        Fp16CvtLanes8Avx2(x0, abs_mask, overflow_at, max_finite, inf));
    const __m256i unord0 = _mm256_castps_si256(_mm256_cmp_ps(x0, x0, _CMP_UNORD_Q));
    const __m256i unord1 = _mm256_castps_si256(_mm256_cmp_ps(x1, x1, _CMP_UNORD_Q));
    const __m256i nan16 = _mm256_set_m128i(
        _mm_packs_epi32(_mm256_castsi256_si128(unord1), _mm256_extractf128_si256(unord1, 1)),
        _mm_packs_epi32(_mm256_castsi256_si128(unord0), _mm256_extractf128_si256(unord0, 1)));
    const __m256i canon = _mm256_or_si256(_mm256_and_si256(h, sign_half), nan_half);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_blendv_epi8(h, canon, nan16));
  }
  for (; i < n; ++i) {
    dst[i] = Fp32ToFp16Bits(src[i]);
  }
}

__attribute__((target("avx2,f16c"))) void Fp16DecodeAvx2(const uint16_t* src, float* dst,
                                                         int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(_mm256_castsi256_si128(h)));
    _mm256_storeu_ps(dst + i + 8, _mm256_cvtph_ps(_mm256_extracti128_si256(h, 1)));
  }
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i,
        _mm256_cvtph_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i))));
  }
  const float* lut = Fp16DecodeTable();
  for (; i < n; ++i) {
    dst[i] = lut[src[i]];
  }
}

__attribute__((target("avx2"))) void Int8DequantizeAvx2(const int8_t* src, float scale,
                                                        float* dst, int64_t n) {
  const __m256 vscale = _mm256_set1_ps(scale);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i d = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i)));
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_cvtepi32_ps(d), vscale));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
}

// ================================= kAvx512 ======================================
//
// 16-lane conversions with mask registers replacing the pack/blend fixup dance.
// Requires F+BW+VL (BW+VL for the 16-bit masked blend on the encode side).

__attribute__((target("avx512f,avx512bw,avx512vl,f16c"))) void Fp16EncodeAvx512(
    const float* src, uint16_t* dst, int64_t n) {
  const __m512i abs_mask = _mm512_set1_epi32(0x7fffffff);
  const __m512 overflow_at = _mm512_set1_ps(65520.0f);
  const __m512 max_finite = _mm512_set1_ps(65504.0f);
  const __m512 inf = _mm512_set1_ps(std::numeric_limits<float>::infinity());
  const __m256i sign_half = _mm256_set1_epi16(static_cast<short>(0x8000));
  const __m256i nan_half = _mm256_set1_epi16(0x7e00);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 x = _mm512_loadu_ps(src + i);
    const __m512i xi = _mm512_castps_si512(x);
    const __m512 abs = _mm512_castsi512_ps(_mm512_and_epi32(xi, abs_mask));
    const __m512i sign = _mm512_andnot_epi32(abs_mask, xi);
    const __mmask16 finite_ovf = _mm512_cmp_ps_mask(abs, overflow_at, _CMP_GE_OQ) &
                                 ~_mm512_cmp_ps_mask(abs, inf, _CMP_EQ_OQ);
    const __m512 clamped = _mm512_mask_mov_ps(abs, finite_ovf, max_finite);
    const __m512 signed_x =
        _mm512_castsi512_ps(_mm512_or_epi32(_mm512_castps_si512(clamped), sign));
    __m256i h = _mm512_cvtps_ph(signed_x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __mmask16 unord = _mm512_cmp_ps_mask(x, x, _CMP_UNORD_Q);
    const __m256i canon = _mm256_or_si256(_mm256_and_si256(h, sign_half), nan_half);
    h = _mm256_mask_blend_epi16(unord, h, canon);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), h);
  }
  for (; i < n; ++i) {
    dst[i] = Fp32ToFp16Bits(src[i]);
  }
}

// No 512-bit decode kernel: vcvtph2ps is convert-port-bound, and on double-pumped
// AVX-512 implementations the zmm form measures ~30% SLOWER than streaming ymm
// converts (24 vs 35 GB/s on the reference box). The avx512 tier therefore reuses
// the 16-per-iteration 256-bit decode; every other avx512 kernel measures faster
// than its 256-bit counterpart and stays 512-bit.

__attribute__((target("avx512f"))) float MaxAbsAvx512(const float* src, int64_t n) {
  const __m512i abs_mask = _mm512_set1_epi32(0x7fffffff);
  __m512 acc = _mm512_setzero_ps();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Fresh lanes first: vmaxps keeps the accumulator on NaN (see MaxAbsAvx).
    const __m512i xi = _mm512_castps_si512(_mm512_loadu_ps(src + i));
    acc = _mm512_max_ps(_mm512_castsi512_ps(_mm512_and_epi32(xi, abs_mask)), acc);
  }
  float max_abs = _mm512_reduce_max_ps(acc);
  for (; i < n; ++i) {
    max_abs = std::max(max_abs, std::fabs(src[i]));
  }
  return max_abs;
}

__attribute__((target("avx512f"))) void Int8QuantizeAvx512(const float* src,
                                                           float inv_scale, int8_t* dst,
                                                           int64_t n) {
  const __m512 vinv = _mm512_set1_ps(inv_scale);
  const __m512 half = _mm512_set1_ps(0.5f);
  const __m512 neg_half = _mm512_set1_ps(-0.5f);
  const __m512 one = _mm512_set1_ps(1.0f);
  const __m512 hi = _mm512_set1_ps(127.0f);
  const __m512 lo = _mm512_set1_ps(-127.0f);
  const __m512 zero = _mm512_setzero_ps();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 x = _mm512_mul_ps(_mm512_loadu_ps(src + i), vinv);
    // Round-to-nearest-even with exceptions suppressed (imm 0x08), then the same
    // exact tie fixup as the 256-bit tier, on mask registers.
    const __m512 r = _mm512_roundscale_ps(x, 0x08);
    const __m512 t = _mm512_sub_ps(x, r);
    const __mmask16 fix_up = _mm512_cmp_ps_mask(t, half, _CMP_EQ_OQ) &
                             _mm512_cmp_ps_mask(x, zero, _CMP_GT_OQ);
    const __mmask16 fix_dn = _mm512_cmp_ps_mask(t, neg_half, _CMP_EQ_OQ) &
                             _mm512_cmp_ps_mask(x, zero, _CMP_LT_OQ);
    __m512 v = _mm512_mask_add_ps(r, fix_up, r, one);
    v = _mm512_mask_sub_ps(v, fix_dn, v, one);
    v = _mm512_max_ps(_mm512_min_ps(v, hi), lo);
    const __m512i vi = _mm512_cvtps_epi32(v);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm512_cvtsepi32_epi8(vi));
  }
  for (; i < n; ++i) {
    const float v = std::round(src[i] * inv_scale);
    dst[i] = static_cast<int8_t>(std::max(-127.0f, std::min(127.0f, v)));
  }
}

__attribute__((target("avx512f"))) void Int8DequantizeAvx512(const int8_t* src,
                                                             float scale, float* dst,
                                                             int64_t n) {
  const __m512 vscale = _mm512_set1_ps(scale);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i d = _mm512_cvtepi8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
    _mm512_storeu_ps(dst + i, _mm512_mul_ps(_mm512_cvtepi32_ps(d), vscale));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
}

// ================================== crc32c ======================================
//
// One hardware kernel shared by every vector tier: the crc32q instruction is SSE4.2
// (a strict subset of the F16C+AVX+SSE4.1 floor DetectTier requires for any vector
// tier), and nothing wider helps. What DOES help is breaking the dependency chain:
// crc32q retires 1/cycle but has 3-cycle latency, so a single chained loop runs at a
// third of peak. Large buffers are split into three independent streams checksummed
// in one interleaved loop, then recombined.
//
// Recombination uses the linearity of the raw CRC register: processing segment B
// from state s equals (s pushed through |B| zero bytes) XOR (B from state 0). The
// zero-push for the fixed stream length is a GF(2)-linear map, tabulated per state
// byte (Adler's two-level scheme) by running each of the 32 state basis bits through
// the hardware instruction once at first use — no magic polynomial constants.

constexpr int64_t kCrcStreamBytes = 1024;  // per-stream block; tail < 3KiB stays chained

struct CrcZeroShiftTable {
  uint32_t t[4][256];
};

__attribute__((target("sse4.2"))) uint32_t Crc32cPushZeros(uint32_t state, int64_t n) {
  uint64_t c = state;
  for (; n >= 8; n -= 8) {
    c = _mm_crc32_u64(c, 0);
  }
  auto crc = static_cast<uint32_t>(c);
  for (; n > 0; --n) {
    crc = _mm_crc32_u8(crc, 0);
  }
  return crc;
}

const CrcZeroShiftTable& CrcStreamShiftTable() {
  static const CrcZeroShiftTable table = [] {
    CrcZeroShiftTable tb;
    uint32_t basis[32];
    for (int bit = 0; bit < 32; ++bit) {
      basis[bit] = Crc32cPushZeros(1u << bit, kCrcStreamBytes);
    }
    for (int k = 0; k < 4; ++k) {
      for (int b = 0; b < 256; ++b) {
        uint32_t v = 0;
        for (int bit = 0; bit < 8; ++bit) {
          if ((b >> bit) & 1) {
            v ^= basis[8 * k + bit];
          }
        }
        tb.t[k][b] = v;
      }
    }
    return tb;
  }();
  return table;
}

inline uint32_t CrcShiftStream(const CrcZeroShiftTable& tb, uint32_t crc) {
  return tb.t[0][crc & 0xFF] ^ tb.t[1][(crc >> 8) & 0xFF] ^
         tb.t[2][(crc >> 16) & 0xFF] ^ tb.t[3][crc >> 24];
}

__attribute__((target("sse4.2"))) uint32_t Crc32cSse42(uint32_t crc, const void* data,
                                                       int64_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  if (n >= 3 * kCrcStreamBytes) {
    const CrcZeroShiftTable& shift = CrcStreamShiftTable();
    uint64_t c0 = crc;
    do {
      uint64_t c1 = 0, c2 = 0;
      for (int64_t i = 0; i < kCrcStreamBytes; i += 8) {
        uint64_t w0, w1, w2;
        std::memcpy(&w0, p + i, sizeof(w0));
        std::memcpy(&w1, p + kCrcStreamBytes + i, sizeof(w1));
        std::memcpy(&w2, p + 2 * kCrcStreamBytes + i, sizeof(w2));
        c0 = _mm_crc32_u64(c0, w0);
        c1 = _mm_crc32_u64(c1, w1);
        c2 = _mm_crc32_u64(c2, w2);
      }
      c0 = CrcShiftStream(shift, static_cast<uint32_t>(c0)) ^ c1;
      c0 = CrcShiftStream(shift, static_cast<uint32_t>(c0)) ^ c2;
      p += 3 * kCrcStreamBytes;
      n -= 3 * kCrcStreamBytes;
    } while (n >= 3 * kCrcStreamBytes);
    crc = static_cast<uint32_t>(c0);
  }
  uint64_t c = crc;
  for (; n >= 8; p += 8, n -= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    c = _mm_crc32_u64(c, word);
  }
  crc = static_cast<uint32_t>(c);
  for (; n > 0; ++p, --n) {
    crc = _mm_crc32_u8(crc, *p);
  }
  return crc;
}

// The fused copy: the same three-stream CRC schedule riding on a 256-bit copy. The
// bytes move src->dst through ymm registers (full store-port width — 8-byte scalar
// stores would halve copy bandwidth); the crc32q feeds re-load each word from the
// line the vector load just pulled into L1, so they cost load slots, not memory
// traffic. crc32q issues on one ALU port at 8 bytes/cycle — the hard ceiling of any
// checksummed path — so on a DRAM-bound copy most of the checksum hides behind the
// byte movement instead of adding a second sweep. (Non-temporal stores were tried
// for the big-copy case and rejected: on the virtualized hosts this targets they
// measure SLOWER than regular stores, not faster.)
__attribute__((target("avx,sse4.2"))) uint32_t Crc32cCopySse42(uint32_t crc,
                                                               const void* src,
                                                               void* dst, int64_t n) {
  const auto* p = static_cast<const uint8_t*>(src);
  auto* q = static_cast<uint8_t*>(dst);
  if (n >= 3 * kCrcStreamBytes) {
    const CrcZeroShiftTable& shift = CrcStreamShiftTable();
    uint64_t c0 = crc;
    do {
      uint64_t c1 = 0, c2 = 0;
      for (int64_t i = 0; i < kCrcStreamBytes; i += 32) {
        const __m256i v0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
        const __m256i v1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(p + kCrcStreamBytes + i));
        const __m256i v2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(p + 2 * kCrcStreamBytes + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i), v0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + kCrcStreamBytes + i), v1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + 2 * kCrcStreamBytes + i),
                            v2);
        for (int64_t j = 0; j < 32; j += 8) {
          uint64_t w0, w1, w2;
          std::memcpy(&w0, p + i + j, sizeof(w0));
          std::memcpy(&w1, p + kCrcStreamBytes + i + j, sizeof(w1));
          std::memcpy(&w2, p + 2 * kCrcStreamBytes + i + j, sizeof(w2));
          c0 = _mm_crc32_u64(c0, w0);
          c1 = _mm_crc32_u64(c1, w1);
          c2 = _mm_crc32_u64(c2, w2);
        }
      }
      c0 = CrcShiftStream(shift, static_cast<uint32_t>(c0)) ^ c1;
      c0 = CrcShiftStream(shift, static_cast<uint32_t>(c0)) ^ c2;
      p += 3 * kCrcStreamBytes;
      q += 3 * kCrcStreamBytes;
      n -= 3 * kCrcStreamBytes;
    } while (n >= 3 * kCrcStreamBytes);
    crc = static_cast<uint32_t>(c0);
  }
  uint64_t c = crc;
  for (; n >= 8; p += 8, q += 8, n -= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    c = _mm_crc32_u64(c, word);
    std::memcpy(q, &word, sizeof(word));
  }
  crc = static_cast<uint32_t>(c);
  for (; n > 0; ++p, ++q, --n) {
    crc = _mm_crc32_u8(crc, *p);
    *q = *p;
  }
  return crc;
}

#endif  // HCACHE_CODEC_X86

// --------------------------------- dispatch -------------------------------------

constexpr CodecKernels kScalarKernels = {Fp16EncodeScalar, Fp16DecodeScalar, MaxAbsScalar,
                                         Int8QuantizeScalar, Int8DequantizeScalar,
                                         Crc32cScalar, Crc32cCopyScalar};

#if HCACHE_CODEC_X86
constexpr CodecKernels kF16cKernels = {Fp16EncodeF16c, Fp16DecodeF16c, MaxAbsAvx,
                                       Int8QuantizeF16c, Int8DequantizeF16c, Crc32cSse42,
                                       Crc32cCopySse42};
constexpr CodecKernels kAvx2Kernels = {Fp16EncodeAvx2, Fp16DecodeAvx2, MaxAbsAvx,
                                       Int8QuantizeF16c, Int8DequantizeAvx2, Crc32cSse42,
                                       Crc32cCopySse42};
constexpr CodecKernels kAvx512Kernels = {Fp16EncodeAvx512, Fp16DecodeAvx2, MaxAbsAvx512,
                                         Int8QuantizeAvx512, Int8DequantizeAvx512,
                                         Crc32cSse42, Crc32cCopySse42};
#else
constexpr CodecKernels kF16cKernels = kScalarKernels;
constexpr CodecKernels kAvx2Kernels = kScalarKernels;
constexpr CodecKernels kAvx512Kernels = kScalarKernels;
#endif

constexpr CodecKernels kKernelTables[kNumSimdTiers] = {kScalarKernels, kF16cKernels,
                                                       kAvx2Kernels, kAvx512Kernels};

SimdTier DetectTier() {
#if HCACHE_CODEC_X86
  __builtin_cpu_init();
  // Every vector tier converts through F16C and checksums through the SSE4.2 crc32
  // instruction; without them only scalar is usable.
  if (!__builtin_cpu_supports("f16c") || !__builtin_cpu_supports("avx") ||
      !__builtin_cpu_supports("sse4.1") || !__builtin_cpu_supports("sse4.2")) {
    return SimdTier::kScalar;
  }
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) {
    return SimdTier::kAvx2;
  }
  return SimdTier::kF16c;
#else
  return SimdTier::kScalar;
#endif
}

// Returns the tier named by HCACHE_SIMD, or -1 when unset / unrecognized (the
// latter logs once and falls back to full dispatch).
int ParseEnvTier() {
  const char* env = std::getenv("HCACHE_SIMD");
  if (env == nullptr || *env == '\0') {
    return -1;
  }
  std::string s(env);
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (s == "scalar") return static_cast<int>(SimdTier::kScalar);
  if (s == "f16c") return static_cast<int>(SimdTier::kF16c);
  if (s == "avx2") return static_cast<int>(SimdTier::kAvx2);
  if (s == "avx512") return static_cast<int>(SimdTier::kAvx512);
  HCACHE_LOG_WARN << "HCACHE_SIMD=" << env
                  << " not recognized (want scalar|f16c|avx2|avx512); using detected tier";
  return -1;
}

SimdTier InitialTier() {
  const SimdTier detected = DetectTier();
  const int requested = ParseEnvTier();
  if (requested < 0) {
    return detected;
  }
  if (requested > static_cast<int>(detected)) {
    HCACHE_LOG_WARN << "HCACHE_SIMD requests " << SimdTierName(static_cast<SimdTier>(requested))
                    << " but this CPU tops out at " << SimdTierName(detected)
                    << "; clamping";
    return detected;
  }
  return static_cast<SimdTier>(requested);
}

std::atomic<int>& ActiveTierCell() {
  static std::atomic<int> cell{static_cast<int>(InitialTier())};
  return cell;
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kF16c:
      return "f16c";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "?";
}

SimdTier DetectedSimdTier() {
  static const SimdTier tier = DetectTier();
  return tier;
}

SimdTier ActiveSimdTier() {
  return static_cast<SimdTier>(ActiveTierCell().load(std::memory_order_acquire));
}

SimdTier ForceSimdTier(SimdTier tier) {
  const SimdTier clamped = std::min(tier, DetectedSimdTier());
  ActiveTierCell().store(static_cast<int>(clamped), std::memory_order_release);
  return clamped;
}

const CodecKernels& CodecKernelsFor(SimdTier tier) {
  const int t = static_cast<int>(tier);
  CHECK_GE(t, 0);
  CHECK_LE(t, static_cast<int>(DetectedSimdTier()))
      << "tier " << SimdTierName(tier) << " not executable on this CPU";
  return kKernelTables[t];
}

const CodecKernels& ActiveCodecKernels() { return CodecKernelsFor(ActiveSimdTier()); }

uint32_t Crc32c(const void* data, int64_t n) {
  return ActiveCodecKernels().crc32c(0xFFFFFFFFu, data, n) ^ 0xFFFFFFFFu;
}

}  // namespace hcache

#if HCACHE_CODEC_X86
#pragma GCC diagnostic pop
#endif
