#include "src/storage/io_timing.h"

#include <algorithm>

#include "src/common/logging.h"

namespace hcache {

StorageIoModel::StorageIoModel(const Platform& platform) : platform_(platform) {}

double StorageIoModel::DeviceLatency() const {
  if (platform_.storage.kind == StorageBackendSpec::Kind::kDram) {
    return 2e-6;  // one DMA descriptor round trip
  }
  return platform_.storage.ssd.per_io_latency;
}

double StorageIoModel::EffectiveReadBw(double io_size) const {
  const auto& st = platform_.storage;
  if (st.kind == StorageBackendSpec::Kind::kDram) {
    return platform_.gpu.pcie_bw;
  }
  const double per_dev = st.ssd.EffectiveReadBw(io_size);
  return std::min(per_dev * platform_.ssds_per_gpu(), platform_.gpu.pcie_bw);
}

double StorageIoModel::EffectiveWriteBw(double io_size) const {
  const auto& st = platform_.storage;
  if (st.kind == StorageBackendSpec::Kind::kDram) {
    return platform_.gpu.pcie_bw;
  }
  const double per_dev = st.ssd.EffectiveWriteBw(io_size);
  return std::min(per_dev * platform_.ssds_per_gpu(), platform_.gpu.pcie_bw);
}

double StorageIoModel::ReadTime(const IoPattern& pattern) const {
  if (pattern.num_ios <= 0) {
    return 0.0;
  }
  const double bw = EffectiveReadBw(static_cast<double>(pattern.io_size));
  CHECK_GT(bw, 0.0);
  return DeviceLatency() + static_cast<double>(pattern.total_bytes()) / bw;
}

double StorageIoModel::SerialReadTime(const IoPattern& pattern) const {
  if (pattern.num_ios <= 0) {
    return 0.0;
  }
  // Queue depth 1: every IO pays the device latency, and no cross-device striping
  // overlap is possible because the next request is not submitted until this one
  // returned — each read streams from the single device holding its chunk.
  const auto& st = platform_.storage;
  const double stream_bw =
      st.kind == StorageBackendSpec::Kind::kDram
          ? platform_.gpu.pcie_bw
          : std::min(st.ssd.EffectiveReadBw(static_cast<double>(pattern.io_size)),
                     platform_.gpu.pcie_bw);
  CHECK_GT(stream_bw, 0.0);
  return static_cast<double>(pattern.num_ios) * DeviceLatency() +
         static_cast<double>(pattern.total_bytes()) / stream_bw;
}

double StorageIoModel::WriteTime(const IoPattern& pattern) const {
  if (pattern.num_ios <= 0) {
    return 0.0;
  }
  const double bw = EffectiveWriteBw(static_cast<double>(pattern.io_size));
  CHECK_GT(bw, 0.0);
  return DeviceLatency() + static_cast<double>(pattern.total_bytes()) / bw;
}

double StorageIoModel::HiddenLayerReadTime(const ModelConfig& cfg, int64_t n,
                                           StorageLayout layout, int64_t chunk_tokens,
                                           ChunkCodec codec) const {
  return ReadTime(RestoreLayerPattern(layout, cfg, n, chunk_tokens, codec));
}

double StorageIoModel::KvLayerReadTime(const ModelConfig& cfg, int64_t n,
                                       int64_t chunk_tokens) const {
  // KV offload stores K and V chunks with the same chunked layout; rows are
  // 2*kv_dim wide (2x hidden for MHA, less under GQA) at the FP16 state dtype,
  // independent of the hidden-state codec.
  return ReadTime(KvRestoreLayerPattern(StorageLayout::kLayerChunked, cfg, n, chunk_tokens));
}

}  // namespace hcache
