#include "src/storage/chunk_store.h"

#include <cstdio>
#include <filesystem>

#include "src/common/logging.h"

namespace hcache {

namespace fs = std::filesystem;

ChunkStore::ChunkStore(std::vector<std::string> device_dirs, int64_t chunk_bytes)
    : device_dirs_(std::move(device_dirs)), chunk_bytes_(chunk_bytes) {
  CHECK(!device_dirs_.empty());
  CHECK_GT(chunk_bytes_, 0);
  for (const auto& dir : device_dirs_) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    CHECK(!ec) << "cannot create device dir " << dir << ": " << ec.message();
  }
}

int ChunkStore::DeviceOf(const ChunkKey& key) const {
  return static_cast<int>(key.chunk_index % static_cast<int64_t>(device_dirs_.size()));
}

std::string ChunkStore::PathFor(const ChunkKey& key) const {
  char name[96];
  std::snprintf(name, sizeof(name), "ctx%lld_L%lld_C%lld.bin",
                static_cast<long long>(key.context_id), static_cast<long long>(key.layer),
                static_cast<long long>(key.chunk_index));
  return device_dirs_[static_cast<size_t>(DeviceOf(key))] + "/" + name;
}

bool ChunkStore::WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, chunk_bytes_);
  const std::string path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    HCACHE_LOG_ERROR << "open failed: " << path;
    return false;
  }
  const size_t written = std::fwrite(data, 1, static_cast<size_t>(bytes), f);
  const bool ok = written == static_cast<size_t>(bytes) && std::fclose(f) == 0;
  if (!ok) {
    HCACHE_LOG_ERROR << "short write: " << path;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  index_[key] = bytes;
  ++total_writes_;
  return true;
}

int64_t ChunkStore::ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const {
  int64_t size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      return -1;
    }
    size = it->second;
    ++total_reads_;
  }
  if (size > buf_bytes) {
    return -1;
  }
  const std::string path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return -1;
  }
  const size_t got = std::fread(buf, 1, static_cast<size_t>(size), f);
  std::fclose(f);
  return got == static_cast<size_t>(size) ? size : -1;
}

bool ChunkStore::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

int64_t ChunkStore::ChunkSize(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  return it == index_.end() ? -1 : it->second;
}

void ChunkStore::DeleteContext(int64_t context_id) {
  std::vector<ChunkKey> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = index_.lower_bound(ChunkKey{context_id, 0, 0});
         it != index_.end() && it->first.context_id == context_id;) {
      doomed.push_back(it->first);
      it = index_.erase(it);
    }
  }
  for (const auto& key : doomed) {
    std::error_code ec;
    fs::remove(PathFor(key), ec);
  }
}

int64_t ChunkStore::chunks_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(index_.size());
}

int64_t ChunkStore::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, size] : index_) {
    total += size;
  }
  return total;
}

int64_t ChunkStore::total_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_writes_;
}

int64_t ChunkStore::total_reads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_reads_;
}

}  // namespace hcache
