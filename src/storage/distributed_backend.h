// Distributed cold plane: chunks replicated across N simulated storage nodes —
// the recovery half of the durability story. PR 7's CRC plane *detects* damage
// (kChunkCorrupt, fsck classification); this backend supplies somewhere to recover
// FROM: every chunk lives on R nodes (consistent-hash placement, placement.h), a
// read whose primary is down/missing/corrupt transparently fails over to the next
// replica, and a background repair worker restores the replication factor after
// node failure, write degradation, or recovery. Modeled on CERN EOS's mgm/fst
// split: placement, draining, and balancing are mgm-side decisions here
// (operator verbs on this class); each fst-style node is an ordinary
// StorageBackend wrapped in an InstrumentedBackend so tests and benches can make
// it slow (injected latency), flaky (scheduled write failures), corrupting
// (bit-flip/truncate at rest), or fail-stop (SetNodeDown).
//
// Semantics, in contract order:
//
//   * Writes replicate to the chunk's home replica set (first R up nodes on the
//     placement walk, skipping down/draining/full nodes). >=1 copy landed =>
//     success; < R copies => success DEGRADED (`degraded_writes`), and the chunk
//     is queued for re-replication. 0 copies => false.
//   * Reads consult the logical index first (absent => -1, short buffer => -1
//     with no side effects — the uniform ReadChunk contract), then walk the
//     replicas: a down node is skipped, a miss or CRC-corrupt copy falls through
//     to the next replica (`failover_reads` counts reads a non-first replica
//     served). Wrong bytes are never delivered: if every live copy is corrupt
//     the read returns kChunkCorrupt; if nothing valid is reachable it returns
//     -1 — either way the caller's recompute fallback engages. A read that sees
//     a corrupt or missing home copy queues the chunk for repair.
//   * The repair worker (background thread) re-reads a verified copy and rewrites
//     every home replica that lacks one (`re_replicated_chunks`), converging the
//     store back to R after failures, degraded writes, or node recovery.
//   * Drain(node): evacuate while serving — the node leaves the placement (new
//     writes skip it), every chunk it homes is re-replicated onto the survivor
//     set (reads keep failing over to it meanwhile), then its store is emptied
//     and the node removed. Balance(): converge every chunk onto exactly its
//     home replica set — copy the missing, trim the strays — evening fill after
//     membership or fault churn.
//
// Concurrency: membership (the placement table) is copy-on-write behind a shared
// pointer — readers pin a snapshot, Drain installs a new table; per-chunk state
// lives in a mutex-guarded logical index. NO lock is held across node IO on any
// path (reads, writes, repair, drain), so a slow or hung node never wedges
// operations on other chunks, and fault hooks may re-enter the backend.
#ifndef HCACHE_SRC_STORAGE_DISTRIBUTED_BACKEND_H_
#define HCACHE_SRC_STORAGE_DISTRIBUTED_BACKEND_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/storage/instrumented_backend.h"
#include "src/storage/placement.h"
#include "src/storage/storage_backend.h"

namespace hcache {

struct DistributedColdOptions {
  // Replication factor R: home copies per chunk (clamped to the live node count).
  int replication = 2;
  // Consistent-hash ring granularity (placement.h).
  int vnodes_per_node = 64;
  // Run the background repair worker. Off = repairs happen only via RepairChunk /
  // Quiesce / fsck --repair (deterministic single-threaded tests).
  bool background_repair = true;
  // Per-node capacity in bytes; 0 = unlimited. A node at capacity rejects new
  // chunk copies (they place on the next walk node or degrade the write).
  int64_t node_capacity_bytes = 0;
};

// Builds one node's backing store. Default: a MemoryBackend per node. Benches and
// fsck pass FileBackend factories to put each node on its own directory tree.
using NodeFactory =
    std::function<std::unique_ptr<StorageBackend>(int node_id, int64_t chunk_bytes)>;

class DistributedColdBackend : public StorageBackend {
 public:
  DistributedColdBackend(int num_nodes, int64_t chunk_bytes,
                         const DistributedColdOptions& options = {},
                         const NodeFactory& factory = {});
  ~DistributedColdBackend() override;

  // --- StorageBackend surface ---
  bool WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) override;
  int64_t ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const override;
  // Batched failover read: requests are grouped per node (each request starts at
  // its primary) and each node serves its group as ONE batched submission; failed
  // requests retry on their next replica in subsequent rounds. Per-request
  // results, stats, and short-buffer rules are exactly ReadChunk's.
  void ReadChunks(std::span<ChunkReadRequest> requests,
                  const BatchCompletion& done = {}) const override;
  void ReadChunksUnverified(std::span<ChunkReadRequest> requests,
                            const BatchCompletion& done = {}) const override;
  bool WriteChunks(std::span<ChunkWriteRequest> requests,
                   const BatchCompletion& done = {}) override;
  bool HasChunk(const ChunkKey& key) const override;
  int64_t ChunkSize(const ChunkKey& key) const override;
  void DeleteContext(int64_t context_id) override;
  std::vector<std::pair<ChunkKey, int64_t>> ListChunks() const override;
  // Failover read minus verification (fsck's damage-inspection path): returns the
  // first copy any replica delivers, corrupt or not.
  int64_t ReadChunkUnverified(const ChunkKey& key, void* buf,
                              int64_t buf_bytes) const override;
  bool DeleteChunk(const ChunkKey& key) override;
  StorageStats Stats() const override;
  std::string Name() const override;
  // Runs the repair queue to convergence (or until only unrepairable chunks —
  // e.g. all surviving copies on down nodes — remain; those stay queued and
  // retry on the next fault-state change).
  void Quiesce() override;

  // --- fault injection / operator verbs ---

  // Fail-stop: the node serves nothing (reads fail over, writes place around it)
  // until SetNodeUp. Chunks homed on it are queued for re-replication onto spill
  // nodes further along the walk. Returns false for an unknown/removed node.
  bool SetNodeDown(int node);
  // Recovery: the node serves again, and every chunk homed on it is queued so the
  // repair worker converges it back to its home copies. Placement never changed
  // while it was down (failure is temporary; drain is the permanent exit).
  bool SetNodeUp(int node);

  // Evacuate `node` while serving, then remove it from placement. Blocks the
  // caller until every chunk it held is fully replicated on the surviving nodes
  // (reads and writes proceed concurrently throughout). Returns false if the
  // node is unknown/removed/down, it is the last live node, or some chunk could
  // not be re-replicated (the node is then left draining but still serving).
  bool Drain(int node);

  // Converges every chunk onto exactly its home replica set: copies missing home
  // replicas, deletes stray copies on non-home nodes (fill evens out after
  // drains, recoveries, and degraded intervals). Returns the number of chunk
  // copies moved or trimmed.
  int64_t Balance();

  // --- inspection (tests, fsck, bench) ---

  struct ReplicationStatus {
    std::vector<int> home;      // the chunk's home replica set (placement order)
    int healthy_copies = 0;     // home copies that verify clean
    int missing_copies = 0;     // home nodes without the chunk (or down)
    int corrupt_copies = 0;     // home copies that exist but fail verification
    std::vector<int> stray;     // non-home nodes also holding a copy
    bool FullyReplicated() const { return missing_copies == 0 && corrupt_copies == 0; }
  };
  // Inspects every home replica of `key` (verified reads; down nodes count as
  // missing). Keys absent from the logical index report empty home.
  ReplicationStatus CheckReplication(const ChunkKey& key) const;

  // Synchronously restores `key` to full replication from a healthy verified
  // copy (re-writing corrupt home copies too). Returns true when the chunk is at
  // its full home replica count afterwards. The fsck --repair path.
  bool RepairChunk(const ChunkKey& key);

  struct NodeInfo {
    int id = -1;
    bool up = true;
    bool draining = false;
    bool removed = false;
    int64_t chunks = 0;  // physical copies resident on the node
    int64_t bytes = 0;
    int64_t capacity_bytes = 0;  // 0 = unlimited
  };
  std::vector<NodeInfo> NodeTable() const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_live_nodes() const;  // not removed (down nodes still count as members)
  bool IsNodeDown(int node) const;
  // The node's InstrumentedBackend wrapper — inject latency, write failures, or
  // at-rest corruption through it.
  InstrumentedBackend* node_instrument(int node) const;
  // The node's raw store (under the instrumentation).
  StorageBackend* node_store(int node) const;
  // Per-node capacity override (0 = unlimited); tests shape skewed fills with it.
  void set_node_capacity(int node, int64_t bytes);
  const DistributedColdOptions& options() const { return options_; }

 private:
  struct Node {
    int id = -1;
    std::unique_ptr<StorageBackend> store;     // the node's own backend
    std::unique_ptr<InstrumentedBackend> io;   // fault-injection wrapper around it
    std::atomic<bool> down{false};
    std::atomic<bool> draining{false};
    std::atomic<bool> removed{false};
    std::atomic<int64_t> capacity_bytes{0};    // 0 = unlimited
  };

  // One logical chunk. `gen` advances on every overwrite; `copies` records which
  // node holds bytes of which generation, so a node that missed an overwrite
  // while down can never serve its stale copy — staleness is a metadata check,
  // not a read-and-compare. `committed` gates visibility: a first write claims
  // its entry (and gen) before any node IO but the key reads as absent until the
  // write lands somewhere.
  struct IndexEntry {
    int64_t size = 0;
    uint64_t gen = 0;
    bool committed = false;
    std::map<int, uint64_t> copies;  // node -> generation of the copy it holds
    // Seqlock against write/repair races: repair (and Balance's trim) bumps
    // `repair_epoch` and holds `repairs_inflight` around its node IO; a writer
    // whose claim→commit window overlaps any repair window (epoch moved or a
    // repair still in flight) REDOES its node writes before committing, so a
    // repairer's old-generation bytes can never end up under a commit that
    // claims the new generation.
    uint64_t repair_epoch = 0;
    int repairs_inflight = 0;
  };

  // Snapshot of the current placement (copy-on-write; Drain installs a new one).
  std::shared_ptr<const PlacementTable> placement() const;
  // Effective replica targets for a write of `bytes`: the first `replication`
  // nodes on the walk that are up, not draining, not removed, and have capacity.
  // May return fewer than R (degraded write).
  std::vector<int> WriteTargets(const ChunkKey& key, const PlacementTable& table,
                                int64_t bytes) const;
  // The replication factor currently achievable: min(R, member nodes).
  int DesiredReplication(const PlacementTable& table) const;
  bool NodeWritable(int node) const;
  bool NodeReadable(int node) const;
  bool NodeHasCapacity(int node, int64_t bytes) const;

  // Current-generation copy holders of a snapshot entry, best first: placement
  // walk order, then holders outside the table (a draining node still serving).
  std::vector<int> CandidateHolders(const ChunkKey& key, const PlacementTable& table,
                                    uint64_t gen,
                                    const std::map<int, uint64_t>& copies) const;

  // Shared bodies of the verified and unverified failover read paths.
  int64_t ReadChunkImpl(const ChunkKey& key, void* buf, int64_t buf_bytes,
                        bool verify) const;
  void ReadChunksImpl(std::span<ChunkReadRequest> requests, const BatchCompletion& done,
                      bool verify) const;

  // Queues keys for repair and wakes the worker. index_mu_ held by caller.
  void EnqueueRepairLocked(const ChunkKey& key) const;
  // One repair pass over a snapshot of the queued keys; returns how many were
  // fully resolved. Never holds index_mu_ across node IO.
  int64_t RunRepairPass();
  // Restores `key` toward full home replication; returns true when resolved
  // (fully replicated, superseded, or deleted). `copies_written` (optional)
  // accumulates the number of node copies actually written.
  bool RepairChunkInternal(const ChunkKey& key, int64_t* copies_written = nullptr);
  void RepairLoop();
  // Synchronous repair driver (Quiesce without a worker, Drain convergence):
  // passes until the queue is empty or a pass resolves nothing.
  void RepairToConvergence();

  DistributedColdOptions options_;
  std::vector<std::unique_ptr<Node>> nodes_;

  mutable std::mutex placement_mu_;  // guards the shared_ptr swap only
  std::shared_ptr<const PlacementTable> placement_;

  // Write barrier: every WriteChunks call holds this shared for its full
  // claim→IO→commit span. Drain acquires it exclusive (and immediately releases)
  // after swapping the placement table, so no writer that fetched the OLD table
  // can still land bytes on the node being evacuated once the wipe begins.
  std::shared_mutex write_barrier_;

  // Logical contents + repair plane. Never held across node IO.
  mutable std::mutex index_mu_;
  std::map<ChunkKey, IndexEntry> index_;
  mutable std::set<ChunkKey> repair_queue_;      // under-replicated, repair pending
  mutable bool repair_dirty_ = false;            // queue changed since the last pass
  mutable std::condition_variable repair_cv_;    // wakes the worker
  mutable std::condition_variable repaired_cv_;  // wakes Quiesce
  mutable bool repair_inflight_ = false;
  bool shutting_down_ = false;
  std::thread repair_worker_;

  mutable std::atomic<int64_t> total_writes_{0};
  mutable std::atomic<int64_t> total_reads_{0};
  mutable std::atomic<int64_t> read_bytes_{0};
  mutable std::atomic<int64_t> failover_reads_{0};
  mutable std::atomic<int64_t> degraded_writes_{0};
  mutable std::atomic<int64_t> re_replicated_chunks_{0};
  mutable std::atomic<int64_t> crc_failures_{0};  // reads where every copy was corrupt
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_DISTRIBUTED_BACKEND_H_
