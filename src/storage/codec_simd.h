// Runtime-dispatched SIMD kernels for the chunk precision codec (ROADMAP item 3).
//
// The codec's convert loops are the storage plane's speed-of-light: restoration is
// bound by bytes moved per token, and every byte passes through fp16/int8 encode or
// decode exactly once. This module replaces reliance on auto-vectorization with
// hand-written kernels behind a cached function-pointer table:
//
//   kScalar — the portable reference loops (bit manipulation for FP16, 256 KiB LUT
//             decode). Always available, always correct; every other tier must be
//             bit-identical to it (pinned by tests/storage/codec_matrix_test.cc).
//   kF16c   — AVX1 + F16C + SSE4.1: vcvtps2ph/vcvtph2ps for FP16, 256-bit float
//             math with 128-bit integer fixups for INT8. The widest tier most
//             pre-AVX2 virtualized hosts can run.
//   kAvx2   — adds 256-bit integer ops (single-blend NaN fixup on the encode side,
//             256-bit widening loads for INT8 dequant).
//   kAvx512 — AVX-512 F+BW+VL: 16-lane conversions with mask-register fixups.
//
// Bit-exactness is a hard contract, not an aspiration: the vector kernels reproduce
// the scalar codec's saturating RNE fp16 encode (finite overflow -> +-0x7bff, Inf
// preserved, every NaN canonicalized to sign|0x7e00), its LUT decode (vcvtph2ps is
// LUT-equivalent for all 65536 halfs, signaling-NaN quieting included), and the int8
// round-half-away-from-zero quantizer (NaN clamps to 127, exactly like the scalar
// std::max/std::min chain). Restored state therefore stays bit-stable across ISAs,
// thread counts, and backends.
//
// Dispatch: the active tier is chosen once from CPUID, clamped by the HCACHE_SIMD
// environment variable (scalar|f16c|avx2|avx512 — requests above what the CPU
// supports clamp down with a warning). ForceSimdTier() overrides it in-process so
// the bit-exactness matrix test and the per-ISA bench rows can iterate every tier
// the machine can execute.
#ifndef HCACHE_SRC_STORAGE_CODEC_SIMD_H_
#define HCACHE_SRC_STORAGE_CODEC_SIMD_H_

#include <cstdint>

namespace hcache {

enum class SimdTier : int { kScalar = 0, kF16c = 1, kAvx2 = 2, kAvx512 = 3 };

inline constexpr int kNumSimdTiers = 4;

const char* SimdTierName(SimdTier tier);

// Best tier this CPU can execute (CPUID, cached after the first call).
SimdTier DetectedSimdTier();

// Tier the codec currently dispatches to: DetectedSimdTier() clamped by HCACHE_SIMD
// (read once), or whatever ForceSimdTier() last installed.
SimdTier ActiveSimdTier();

// Installs `tier` (clamped to DetectedSimdTier() — requesting an ISA the CPU lacks
// never selects it) and returns the tier actually active. Test/bench hook; safe to
// call concurrently with kernel users (the table pointer swap is atomic), though
// in-flight conversions finish on the tier they started with.
SimdTier ForceSimdTier(SimdTier tier);

// One ISA tier's convert kernels. All pointers are always non-null; every kernel
// accepts any n >= 0 and unaligned pointers (ragged tails run the scalar epilogue).
struct CodecKernels {
  // dst[i] = Fp32ToFp16Bits(src[i]) — saturating RNE encode.
  void (*fp16_encode)(const float* src, uint16_t* dst, int64_t n);
  // dst[i] = Fp16BitsToFp32(src[i]) — exact decode.
  void (*fp16_decode)(const uint16_t* src, float* dst, int64_t n);
  // max_i |src[i]| over n elements (0.0f for n == 0); NaN elements are ignored,
  // matching the scalar std::max accumulation.
  float (*max_abs)(const float* src, int64_t n);
  // dst[i] = (int8)max(-127, min(127, round(src[i] * inv_scale))) — round half away
  // from zero; NaN quantizes to 127 (the scalar clamp chain's behavior).
  void (*int8_quantize)(const float* src, float inv_scale, int8_t* dst, int64_t n);
  // dst[i] = (float)src[i] * scale.
  void (*int8_dequantize)(const int8_t* src, float scale, float* dst, int64_t n);
  // CRC32C (Castagnoli) over n bytes, chainable: takes and returns the RAW shift
  // register state (no ~ applied). Callers wanting the conventional checksum use
  // Crc32c() below. The vector tiers run the SSE4.2 crc32 instruction; the scalar
  // tier a byte-wise table — identical results by construction.
  uint32_t (*crc32c)(uint32_t crc, const void* data, int64_t n);
  // memcpy(dst, src, n) fused with the same chainable CRC over the bytes moved —
  // the verified read path's one-pass copy+checksum (the data is flowing through
  // registers anyway, so checksumming it there costs ports, not a second memory
  // sweep). src and dst must not overlap.
  uint32_t (*crc32c_copy)(uint32_t crc, const void* src, void* dst, int64_t n);
};

// The table for one specific tier. CHECK-fails if `tier` exceeds DetectedSimdTier()
// — calling an unsupported kernel would be SIGILL, not a graceful error.
const CodecKernels& CodecKernelsFor(SimdTier tier);

// The table the codec hot paths dispatch through (CodecKernelsFor(ActiveSimdTier())).
const CodecKernels& ActiveCodecKernels();

// One-shot CRC32C of a buffer under the active tier: ~0 init, final xor — the value
// stored in ChunkHeader::payload_crc32c. CRC32C("123456789") == 0xE3069283.
uint32_t Crc32c(const void* data, int64_t n);

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_CODEC_SIMD_H_
