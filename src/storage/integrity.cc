#include "src/storage/integrity.h"

#include <cstring>

#include "src/storage/codec.h"
#include "src/storage/codec_simd.h"
#include "src/storage/layout.h"

namespace hcache {

const char* ChunkVerdictName(ChunkVerdict verdict) {
  switch (verdict) {
    case ChunkVerdict::kOkVerified:
      return "ok-verified";
    case ChunkVerdict::kOkUnverified:
      return "ok-unverified";
    case ChunkVerdict::kCorrupt:
      return "corrupt";
  }
  return "?";
}

ChunkVerdict VerifyChunkBytes(const void* data, int64_t bytes, int64_t* checked_bytes) {
  if (checked_bytes != nullptr) {
    *checked_bytes = 0;
  }
  if (data == nullptr || bytes <= 0) {
    return ChunkVerdict::kOkUnverified;
  }
  ChunkInfo info;
  // legacy_cols = 0: the backend does not know the caller's row geometry, so the
  // legacy-FP32 interpretation never fires here — headerless bytes simply stay
  // unverified (the decode path still vets their size against its own geometry).
  if (InspectChunk(data, bytes, /*legacy_cols=*/0, &info)) {
    if (!info.has_crc) {
      return ChunkVerdict::kOkUnverified;  // v1: readable, carries no checksum
    }
    const uint8_t* payload = static_cast<const uint8_t*>(data) + info.header_bytes;
    const int64_t payload_bytes = bytes - info.header_bytes;
    if (Crc32c(payload, payload_bytes) != info.payload_crc32c) {
      return ChunkVerdict::kCorrupt;
    }
    if (checked_bytes != nullptr) {
      *checked_bytes = payload_bytes;
    }
    return ChunkVerdict::kOkVerified;
  }
  // Unparseable. If the bytes CLAIM the chunk format (the magic is present) the
  // claim failed — header bit flip, bad header CRC, or truncation — and that is a
  // detected corruption, not an opaque blob.
  uint32_t magic = 0;
  if (bytes >= static_cast<int64_t>(sizeof(magic))) {
    std::memcpy(&magic, data, sizeof(magic));
    if (magic == kChunkMagic) {
      return ChunkVerdict::kCorrupt;
    }
  }
  return ChunkVerdict::kOkUnverified;
}

ChunkVerdict VerifyAndCopyChunk(const void* data, int64_t bytes, void* dst,
                                int64_t* checked_bytes) {
  if (checked_bytes != nullptr) {
    *checked_bytes = 0;
  }
  if (data == nullptr || bytes <= 0) {
    return ChunkVerdict::kOkUnverified;  // nothing to copy
  }
  ChunkInfo info;
  if (InspectChunk(data, bytes, /*legacy_cols=*/0, &info) && info.has_crc) {
    // Sealed v2 chunk: checksum the payload while it moves.
    const auto* src = static_cast<const uint8_t*>(data);
    auto* out = static_cast<uint8_t*>(dst);
    std::memcpy(out, src, static_cast<size_t>(info.header_bytes));
    const int64_t payload_bytes = bytes - info.header_bytes;
    const uint32_t crc =
        ActiveCodecKernels().crc32c_copy(0xFFFFFFFFu, src + info.header_bytes,
                                         out + info.header_bytes, payload_bytes) ^
        0xFFFFFFFFu;
    if (crc != info.payload_crc32c) {
      return ChunkVerdict::kCorrupt;  // dst contents unspecified
    }
    if (checked_bytes != nullptr) {
      *checked_bytes = payload_bytes;
    }
    return ChunkVerdict::kOkVerified;
  }
  // v1 / opaque / corrupt format claim: the two-pass verdict, plain copy on success.
  const ChunkVerdict verdict = VerifyChunkBytes(data, bytes, nullptr);
  if (verdict != ChunkVerdict::kCorrupt) {
    std::memcpy(dst, data, static_cast<size_t>(bytes));
  }
  return verdict;
}

}  // namespace hcache
