// DRAM-resident storage backend — the paper's host-memory tier (§6.2.1, the cloud
// -server configuration where hidden states live in pinned host DRAM), and the fast
// backend for tests. Also serves as TieredBackend's hot tier building block.
#ifndef HCACHE_SRC_STORAGE_MEMORY_BACKEND_H_
#define HCACHE_SRC_STORAGE_MEMORY_BACKEND_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/storage_backend.h"

namespace hcache {

class MemoryBackend : public StorageBackend {
 public:
  explicit MemoryBackend(int64_t chunk_bytes);

  bool WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) override;
  int64_t ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const override;
  // Batched read: one lock acquisition resolves the whole batch (N serial calls pay
  // N lock round trips); large batches work-share the memcpys across the pool.
  void ReadChunks(std::span<ChunkReadRequest> requests,
                  const BatchCompletion& done = {}) const override;
  void ReadChunksUnverified(std::span<ChunkReadRequest> requests,
                            const BatchCompletion& done = {}) const override;
  bool HasChunk(const ChunkKey& key) const override;
  int64_t ChunkSize(const ChunkKey& key) const override;
  void DeleteContext(int64_t context_id) override;
  std::vector<std::pair<ChunkKey, int64_t>> ListChunks() const override;
  int64_t ReadChunkUnverified(const ChunkKey& key, void* buf,
                              int64_t buf_bytes) const override;
  bool DeleteChunk(const ChunkKey& key) override;
  StorageStats Stats() const override;
  std::string Name() const override { return "memory"; }

 private:
  // Shared bodies of the verified and unverified read paths.
  int64_t ReadChunkImpl(const ChunkKey& key, void* buf, int64_t buf_bytes,
                        bool verify) const;
  void ReadChunksImpl(std::span<ChunkReadRequest> requests, const BatchCompletion& done,
                      bool verify) const;

  mutable std::mutex mu_;
  std::map<ChunkKey, std::vector<char>> chunks_;
  int64_t bytes_stored_ = 0;
  int64_t total_writes_ = 0;
  mutable int64_t total_reads_ = 0;
  mutable int64_t read_bytes_ = 0;
  mutable int64_t crc_failures_ = 0;
  mutable int64_t crc_checked_bytes_ = 0;
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_MEMORY_BACKEND_H_
