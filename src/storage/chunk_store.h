// File-backed chunk store — the functional realization of §4.2's storage manager.
//
// Chunks are fixed-size objects keyed by (context, layer, chunk_index) and striped
// round-robin across N "devices" (directories — each stands in for one NVMe namespace;
// pointing them at distinct mounts gives real multi-device striping). One chunk maps to
// one file: the paper's design point that chunk allocation is incremental (no
// reservation at max context length, §4.2.1) falls out naturally.
//
// Thread safety: concurrent writers on distinct chunks are safe (the two-stage saver's
// flush threads rely on this); the in-memory index is mutex-guarded.
#ifndef HCACHE_SRC_STORAGE_CHUNK_STORE_H_
#define HCACHE_SRC_STORAGE_CHUNK_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hcache {

struct ChunkKey {
  int64_t context_id = 0;
  int64_t layer = 0;
  int64_t chunk_index = 0;

  friend auto operator<=>(const ChunkKey&, const ChunkKey&) = default;
};

class ChunkStore {
 public:
  // `device_dirs` are created if absent. `chunk_bytes` is the sealed-chunk capacity;
  // the final chunk of a layer may be smaller.
  ChunkStore(std::vector<std::string> device_dirs, int64_t chunk_bytes);

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  // Durably writes a chunk (<= chunk_bytes). Overwrites any existing chunk at `key`.
  // Returns false on IO failure.
  bool WriteChunk(const ChunkKey& key, const void* data, int64_t bytes);

  // Reads a chunk into `buf` (capacity `buf_bytes`). Returns the chunk's byte count,
  // or -1 if the chunk does not exist or the buffer is too small.
  int64_t ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const;

  bool HasChunk(const ChunkKey& key) const;
  int64_t ChunkSize(const ChunkKey& key) const;  // -1 when absent

  // Removes every chunk belonging to a context (session ended / state dropped).
  void DeleteContext(int64_t context_id);

  // Device a chunk is striped onto (round-robin by chunk index — §4.2.1's bandwidth
  // aggregation scheme).
  int DeviceOf(const ChunkKey& key) const;

  int64_t chunk_bytes() const { return chunk_bytes_; }
  int num_devices() const { return static_cast<int>(device_dirs_.size()); }

  // --- statistics (for tests and the micro bench) ---
  int64_t chunks_stored() const;
  int64_t bytes_stored() const;
  int64_t total_writes() const;
  int64_t total_reads() const;

 private:
  std::string PathFor(const ChunkKey& key) const;

  std::vector<std::string> device_dirs_;
  int64_t chunk_bytes_;

  mutable std::mutex mu_;
  std::map<ChunkKey, int64_t> index_;  // key -> stored size
  int64_t total_writes_ = 0;
  mutable int64_t total_reads_ = 0;
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_CHUNK_STORE_H_
