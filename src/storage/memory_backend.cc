#include "src/storage/memory_backend.h"

#include <atomic>
#include <cstring>
#include <vector>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/storage/integrity.h"

namespace hcache {

MemoryBackend::MemoryBackend(int64_t chunk_bytes) : StorageBackend(chunk_bytes) {}

bool MemoryBackend::WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, chunk_bytes());
  const char* src = static_cast<const char*>(data);
  std::lock_guard<std::mutex> lock(mu_);
  auto& chunk = chunks_[key];
  bytes_stored_ += bytes - static_cast<int64_t>(chunk.size());
  chunk.assign(src, src + bytes);
  ++total_writes_;
  return true;
}

int64_t MemoryBackend::ReadChunkImpl(const ChunkKey& key, void* buf, int64_t buf_bytes,
                                     bool verify) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find(key);
  if (it == chunks_.end()) {
    return -1;
  }
  const int64_t size = static_cast<int64_t>(it->second.size());
  if (size > buf_bytes) {
    return -1;
  }
  if (verify) {
    // Fused verify+copy: one pass over the chunk instead of a CRC sweep followed
    // by a memcpy sweep.
    int64_t checked = 0;
    if (VerifyAndCopyChunk(it->second.data(), size, buf, &checked) ==
        ChunkVerdict::kCorrupt) {
      ++crc_failures_;
      return kChunkCorrupt;  // no data delivered (buf unspecified), no read counted
    }
    crc_checked_bytes_ += checked;
    ++total_reads_;
    read_bytes_ += size;
    return size;
  }
  ++total_reads_;
  read_bytes_ += size;
  std::memcpy(buf, it->second.data(), static_cast<size_t>(size));
  return size;
}

int64_t MemoryBackend::ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const {
  return ReadChunkImpl(key, buf, buf_bytes, /*verify=*/true);
}

int64_t MemoryBackend::ReadChunkUnverified(const ChunkKey& key, void* buf,
                                           int64_t buf_bytes) const {
  return ReadChunkImpl(key, buf, buf_bytes, /*verify=*/false);
}

void MemoryBackend::ReadChunks(std::span<ChunkReadRequest> requests,
                               const BatchCompletion& done) const {
  ReadChunksImpl(requests, done, /*verify=*/true);
}

void MemoryBackend::ReadChunksUnverified(std::span<ChunkReadRequest> requests,
                                         const BatchCompletion& done) const {
  ReadChunksImpl(requests, done, /*verify=*/false);
}

void MemoryBackend::ReadChunksImpl(std::span<ChunkReadRequest> requests,
                                   const BatchCompletion& done, bool verify) const {
  struct Job {
    ChunkReadRequest* req;
    const char* src;
    int64_t size;
  };
  std::vector<Job> jobs;
  jobs.reserve(requests.size());
  int64_t total_bytes = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (ChunkReadRequest& req : requests) {
    req.result = -1;
    const auto it = chunks_.find(req.key);
    if (it == chunks_.end()) {
      continue;
    }
    const int64_t size = static_cast<int64_t>(it->second.size());
    if (size > req.buf_bytes) {
      continue;  // short buffer fails only this request, no bytes / no stats
    }
    jobs.push_back(Job{&req, it->second.data(), size});
    total_bytes += size;
  }
  // mu_ stays held across the copies (the map values must not move), which is safe to
  // combine with ParallelFor: the subranges below never touch mu_, and the caller
  // participates in the loop, so a pool worker blocked elsewhere cannot stall us.
  // Verification rides inside the loop via the fused verify+copy kernel, so the CRC
  // sweep is spread across the same threads that move the bytes.
  std::atomic<int64_t> ok_reads{0};
  std::atomic<int64_t> ok_bytes{0};
  std::atomic<int64_t> checked_bytes{0};
  std::atomic<int64_t> failures{0};
  ParallelFor(0, static_cast<int64_t>(jobs.size()),
              total_bytes >= (1 << 20) ? 1 : static_cast<int64_t>(jobs.size()),
              [&](int64_t lo, int64_t hi) {
                int64_t my_reads = 0, my_bytes = 0, my_checked = 0, my_failures = 0;
                for (int64_t i = lo; i < hi; ++i) {
                  const Job& job = jobs[static_cast<size_t>(i)];
                  if (verify) {
                    int64_t checked = 0;
                    if (VerifyAndCopyChunk(job.src, job.size, job.req->buf, &checked) ==
                        ChunkVerdict::kCorrupt) {
                      // Fails only this request, like a serial ReadChunk.
                      job.req->result = kChunkCorrupt;
                      ++my_failures;
                      continue;
                    }
                    my_checked += checked;
                  } else {
                    std::memcpy(job.req->buf, job.src, static_cast<size_t>(job.size));
                  }
                  job.req->result = job.size;
                  ++my_reads;
                  my_bytes += job.size;
                }
                ok_reads.fetch_add(my_reads, std::memory_order_relaxed);
                ok_bytes.fetch_add(my_bytes, std::memory_order_relaxed);
                checked_bytes.fetch_add(my_checked, std::memory_order_relaxed);
                failures.fetch_add(my_failures, std::memory_order_relaxed);
              });
  total_reads_ += ok_reads.load(std::memory_order_relaxed);
  read_bytes_ += ok_bytes.load(std::memory_order_relaxed);
  crc_checked_bytes_ += checked_bytes.load(std::memory_order_relaxed);
  crc_failures_ += failures.load(std::memory_order_relaxed);
  if (done) {
    done();
  }
}

bool MemoryBackend::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.count(key) != 0;
}

int64_t MemoryBackend::ChunkSize(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find(key);
  return it == chunks_.end() ? -1 : static_cast<int64_t>(it->second.size());
}

std::vector<std::pair<ChunkKey, int64_t>> MemoryBackend::ListChunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<ChunkKey, int64_t>> out;
  out.reserve(chunks_.size());
  for (const auto& [key, data] : chunks_) {
    out.emplace_back(key, static_cast<int64_t>(data.size()));
  }
  return out;
}

bool MemoryBackend::DeleteChunk(const ChunkKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find(key);
  if (it == chunks_.end()) {
    return false;
  }
  bytes_stored_ -= static_cast<int64_t>(it->second.size());
  chunks_.erase(it);
  return true;
}

void MemoryBackend::DeleteContext(int64_t context_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = chunks_.lower_bound(ChunkKey{context_id, 0, 0});
       it != chunks_.end() && it->first.context_id == context_id;) {
    bytes_stored_ -= static_cast<int64_t>(it->second.size());
    it = chunks_.erase(it);
  }
}

StorageStats MemoryBackend::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StorageStats s;
  s.chunks_stored = static_cast<int64_t>(chunks_.size());
  s.bytes_stored = bytes_stored_;
  s.total_writes = total_writes_;
  s.total_reads = total_reads_;
  s.dram_hits = total_reads_;  // every read is served from DRAM
  s.dram_hit_bytes = read_bytes_;
  s.crc_failures = crc_failures_;
  s.crc_checked_bytes = crc_checked_bytes_;
  return s;
}

}  // namespace hcache
