#include "src/storage/memory_backend.h"

#include <cstring>

#include "src/common/logging.h"

namespace hcache {

MemoryBackend::MemoryBackend(int64_t chunk_bytes) : StorageBackend(chunk_bytes) {}

bool MemoryBackend::WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, chunk_bytes());
  const char* src = static_cast<const char*>(data);
  std::lock_guard<std::mutex> lock(mu_);
  auto& chunk = chunks_[key];
  bytes_stored_ += bytes - static_cast<int64_t>(chunk.size());
  chunk.assign(src, src + bytes);
  ++total_writes_;
  return true;
}

int64_t MemoryBackend::ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find(key);
  if (it == chunks_.end()) {
    return -1;
  }
  const int64_t size = static_cast<int64_t>(it->second.size());
  if (size > buf_bytes) {
    return -1;
  }
  ++total_reads_;
  read_bytes_ += size;
  std::memcpy(buf, it->second.data(), static_cast<size_t>(size));
  return size;
}

bool MemoryBackend::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.count(key) != 0;
}

int64_t MemoryBackend::ChunkSize(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find(key);
  return it == chunks_.end() ? -1 : static_cast<int64_t>(it->second.size());
}

void MemoryBackend::DeleteContext(int64_t context_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = chunks_.lower_bound(ChunkKey{context_id, 0, 0});
       it != chunks_.end() && it->first.context_id == context_id;) {
    bytes_stored_ -= static_cast<int64_t>(it->second.size());
    it = chunks_.erase(it);
  }
}

StorageStats MemoryBackend::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StorageStats s;
  s.chunks_stored = static_cast<int64_t>(chunks_.size());
  s.bytes_stored = bytes_stored_;
  s.total_writes = total_writes_;
  s.total_reads = total_reads_;
  s.dram_hits = total_reads_;  // every read is served from DRAM
  s.dram_hit_bytes = read_bytes_;
  return s;
}

}  // namespace hcache
