// Storage layout analysis for hidden states (paper §4.2.1, challenge C2) and the
// on-storage chunk format shared by every backend.
//
// Hidden states are *generated* layer-before-token (Fig 6a) but *restored*
// token-before-layer (Fig 6b). A layout can be contiguous for at most one of the two
// orders; the other order then issues many small IOs. This module turns a layout choice
// into concrete IO patterns that the SSD model (and the real chunk store) execute:
//
//   kLayerChunked (HCache's choice): tokens of one layer are grouped into fixed
//     64-token chunks, chunks striped round-robin over the SSDs. Restoration of a layer
//     reads ceil(n/64) large contiguous chunks; direct saving of one decode step would
//     touch every layer's open chunk (small writes) — which is exactly why the
//     two-stage saver exists.
//
//   kTokenMajor (the save-optimized strawman): each token's hidden states across all
//     layers are contiguous. One decode step appends one record per sequence (a single
//     medium write), but restoring a layer gathers n strided rows (small reads).
//
// Chunks are additionally *encoded*: restoration is bound by bytes moved per token
// (§3.2), so the precision of the stored rows is a first-class lever. A ChunkCodec
// selects the element encoding, and every stored chunk is self-describing via a
// versioned ChunkHeader so backends can hold a mix of codecs (and of format versions:
// headerless FP32 chunks from the v0 format still read back).
#ifndef HCACHE_SRC_STORAGE_LAYOUT_H_
#define HCACHE_SRC_STORAGE_LAYOUT_H_

#include <cstdint>

#include "src/model/config.h"

namespace hcache {

enum class StorageLayout { kLayerChunked, kTokenMajor };

// The paper fixes chunks at 64 tokens (§4.2.1); the ablation bench sweeps this.
inline constexpr int64_t kDefaultChunkTokens = 64;

// --- chunk codec: the element encoding of stored rows ---
//
//   kFp32 — raw floats, bit-lossless round trip (the functional plane's default, so
//           lossless-restoration tests stay exact).
//   kFp16 — IEEE half, round-to-nearest-even, saturating at ±65504. Halves the bytes;
//           error ≤ 0.5 ulp of half per element. The serving default: the paper's
//           hidden-state IO model is already sized for FP16 transport.
//   kInt8 — per-row symmetric quantization (CacheGen-style, §7): one FP32 scale
//           max|row|/127 per token row, then rounded int8 values. ~4x vs FP32; error
//           ≤ scale/2 per element (quantize.h's RowErrorBound).
enum class ChunkCodec : uint8_t { kFp32 = 0, kFp16 = 1, kInt8 = 2 };

const char* ChunkCodecName(ChunkCodec codec);

// Payload bytes one row of `cols` elements occupies under `codec` (the per-token
// transmission cost the restoration model charges). kInt8 carries its per-row scale.
int64_t CodecRowBytes(ChunkCodec codec, int64_t cols);

// Self-describing header at the front of every encoded chunk. 24 bytes, little-endian,
// laid out so old headerless FP32 chunks are distinguishable by magic + size check.
//
// --- storage-format note (version history + durability protocol) ---
//
//   v0 — headerless raw-FP32 rows; recognized purely by size (LegacyChunkRows).
//   v1 — 16-byte header {magic, version, codec, rows, cols}; no integrity check.
//   v2 — 24-byte header appending two CRC32C checksums (Castagnoli polynomial,
//        ~0 init, final xor, i.e. the SSE4.2 `crc32` instruction's convention):
//          payload_crc32c — over the rows * CodecRowBytes payload that follows the
//                           header. Backends verify it on EVERY read of a v2 chunk
//                           (ReadChunk, ReadChunks, tiered promotion) and report a
//                           mismatch as kChunkCorrupt, never as decoded data.
//          header_crc32c  — over the first 20 header bytes, so a bit flip inside
//                           the header itself (rows, cols, codec) is detected
//                           before any field is trusted.
//        v1 and v0 chunks still read back, but pass unverified.
//
//   Crash consistency: FileBackend publishes a chunk by writing `<path>.tmp`,
//   fsync-ing it, then rename(2)-ing it over the final path — a reader never
//   observes a half-written chunk, and a crash leaves at worst an orphaned `.tmp`
//   the startup recovery scan (or hcache-fsck) sweeps.
struct ChunkHeader {
  uint32_t magic = 0;    // kChunkMagic
  uint16_t version = 0;  // kChunkFormatVersion
  uint8_t codec = 0;     // ChunkCodec
  uint8_t reserved = 0;
  uint32_t rows = 0;     // tokens stored in this chunk
  uint32_t cols = 0;     // elements per row
  uint32_t payload_crc32c = 0;  // CRC32C over the payload (rows * CodecRowBytes)
  uint32_t header_crc32c = 0;   // CRC32C over the 20 header bytes above
};
static_assert(sizeof(ChunkHeader) == 24, "header layout is part of the storage format");

inline constexpr uint32_t kChunkMagic = 0x4b434348;  // "HCCK" little-endian
inline constexpr uint16_t kChunkFormatVersion = 2;
// Size of the v1 header (everything before the CRC fields); v1 chunks still parse.
inline constexpr int64_t kChunkHeaderBytesV1 = 16;

// Total stored size of an encoded chunk: header + rows * CodecRowBytes.
int64_t EncodedChunkBytes(ChunkCodec codec, int64_t rows, int64_t cols);

// Rows a LEGACY (v0, headerless raw-FP32) chunk of `stored_bytes` holds, or -1 when
// the size is not a whole number of `cols`-float rows. The single source of truth for
// the legacy size rule — both the completeness scan (ChunkSizeCoversRows) and the
// decode path (codec.cc's InspectChunk) consult it, so a chunk reported restorable is
// guaranteed to also parse.
inline int64_t LegacyChunkRows(int64_t stored_bytes, int64_t cols) {
  const int64_t row = cols * static_cast<int64_t>(sizeof(float));
  if (cols <= 0 || stored_bytes <= 0 || stored_bytes % row != 0) {
    return -1;
  }
  return stored_bytes / row;
}

// True when `stored_bytes` is the exact size of a valid chunk — encoded under
// `expected` (the codec the context's writer is configured with), or legacy headerless
// FP32 — holding between `min_rows` and `max_rows` rows of `cols` elements. The
// existence check completeness scans (LayerComplete, CanRestore) use when only
// ChunkSize() is known: a partially saved chunk fails both interpretations, so
// restoration reports the context incomplete and the caller falls back to recompute
// instead of CHECK-failing mid-decode. The codec must be pinned by the caller —
// accepting ANY codec's row stride would let a half-saved FP32 chunk alias to a full
// FP16 chunk (r rows x 4 bytes == 2r rows x 2 bytes, a deterministic 2:1 aliasing).
bool ChunkSizeCoversRows(int64_t stored_bytes, int64_t min_rows, int64_t max_rows,
                         int64_t cols, ChunkCodec expected);

struct IoPattern {
  int64_t num_ios = 0;
  int64_t io_size = 0;  // bytes per IO

  int64_t total_bytes() const { return num_ios * io_size; }
};

// IO pattern to restore ONE layer's hidden states for n history tokens. `codec` sets
// the per-row transmission bytes; the default kFp16 matches the paper's FP16 transport
// (and ModelConfig::state_dtype_bytes == 2). The 16-byte chunk header is amortized to
// noise (< 0.1% of a 64-token chunk) and not charged.
IoPattern RestoreLayerPattern(StorageLayout layout, const ModelConfig& cfg, int64_t n,
                              int64_t chunk_tokens = kDefaultChunkTokens,
                              ChunkCodec codec = ChunkCodec::kFp16);

// IO pattern to restore ONE layer's offloaded KV cache for n history tokens. KV chunks
// mirror the hidden chunk geometry but rows are 2 * kv_dim wide at the FP16 state
// dtype (KvBytesPerTokenLayer), independent of the hidden-state codec.
IoPattern KvRestoreLayerPattern(StorageLayout layout, const ModelConfig& cfg, int64_t n,
                                int64_t chunk_tokens = kDefaultChunkTokens);

// IO pattern to persist the hidden states produced by one forward step (one iteration
// of decode with `batch` sequences, or one prefill chunk of `batch` tokens of a single
// sequence), summed over ALL layers, when writing *directly* to storage (no staging).
IoPattern DirectSavePattern(StorageLayout layout, const ModelConfig& cfg, int64_t batch,
                            int64_t chunk_tokens = kDefaultChunkTokens,
                            ChunkCodec codec = ChunkCodec::kFp16);

// IO pattern for the two-stage saver's background flush of one sealed chunk.
IoPattern ChunkFlushPattern(const ModelConfig& cfg, int64_t chunk_tokens = kDefaultChunkTokens,
                            ChunkCodec codec = ChunkCodec::kFp16);

// Bytes of internal fragmentation per (sequence, layer) if storage were reserved at the
// model's max context instead of allocated chunk-by-chunk — the §4.2.1 argument against
// whole-buffer reservation. `n` is the actual history length.
int64_t ReservationWasteBytes(const ModelConfig& cfg, int64_t n);

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_LAYOUT_H_
