// Storage layout analysis for hidden states (paper §4.2.1, challenge C2).
//
// Hidden states are *generated* layer-before-token (Fig 6a) but *restored*
// token-before-layer (Fig 6b). A layout can be contiguous for at most one of the two
// orders; the other order then issues many small IOs. This module turns a layout choice
// into concrete IO patterns that the SSD model (and the real chunk store) execute:
//
//   kLayerChunked (HCache's choice): tokens of one layer are grouped into fixed
//     64-token chunks, chunks striped round-robin over the SSDs. Restoration of a layer
//     reads ceil(n/64) large contiguous chunks; direct saving of one decode step would
//     touch every layer's open chunk (small writes) — which is exactly why the
//     two-stage saver exists.
//
//   kTokenMajor (the save-optimized strawman): each token's hidden states across all
//     layers are contiguous. One decode step appends one record per sequence (a single
//     medium write), but restoring a layer gathers n strided rows (small reads).
#ifndef HCACHE_SRC_STORAGE_LAYOUT_H_
#define HCACHE_SRC_STORAGE_LAYOUT_H_

#include <cstdint>

#include "src/model/config.h"

namespace hcache {

enum class StorageLayout { kLayerChunked, kTokenMajor };

// The paper fixes chunks at 64 tokens (§4.2.1); the ablation bench sweeps this.
inline constexpr int64_t kDefaultChunkTokens = 64;

struct IoPattern {
  int64_t num_ios = 0;
  int64_t io_size = 0;  // bytes per IO

  int64_t total_bytes() const { return num_ios * io_size; }
};

// IO pattern to restore ONE layer's hidden states for n history tokens.
IoPattern RestoreLayerPattern(StorageLayout layout, const ModelConfig& cfg, int64_t n,
                              int64_t chunk_tokens = kDefaultChunkTokens);

// IO pattern to persist the hidden states produced by one forward step (one iteration
// of decode with `batch` sequences, or one prefill chunk of `batch` tokens of a single
// sequence), summed over ALL layers, when writing *directly* to storage (no staging).
IoPattern DirectSavePattern(StorageLayout layout, const ModelConfig& cfg, int64_t batch,
                            int64_t chunk_tokens = kDefaultChunkTokens);

// IO pattern for the two-stage saver's background flush of one sealed chunk.
IoPattern ChunkFlushPattern(const ModelConfig& cfg, int64_t chunk_tokens = kDefaultChunkTokens);

// Bytes of internal fragmentation per (sequence, layer) if storage were reserved at the
// model's max context instead of allocated chunk-by-chunk — the §4.2.1 argument against
// whole-buffer reservation. `n` is the actual history length.
int64_t ReservationWasteBytes(const ModelConfig& cfg, int64_t n);

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_LAYOUT_H_
