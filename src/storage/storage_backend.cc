#include "src/storage/storage_backend.h"

#include "src/common/logging.h"

namespace hcache {

StorageBackend::StorageBackend(int64_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  CHECK_GT(chunk_bytes_, 0);
}

// Base implementation: the sequential loop. Correct for every backend (each request
// is exactly one serial ReadChunk), so overrides only have to improve throughput,
// never semantics.
void StorageBackend::ReadChunks(std::span<ChunkReadRequest> requests,
                                const BatchCompletion& done) const {
  for (ChunkReadRequest& req : requests) {
    req.result = ReadChunk(req.key, req.buf, req.buf_bytes);
  }
  if (done) {
    done();
  }
}

void StorageBackend::ReadChunksUnverified(std::span<ChunkReadRequest> requests,
                                          const BatchCompletion& done) const {
  for (ChunkReadRequest& req : requests) {
    req.result = ReadChunkUnverified(req.key, req.buf, req.buf_bytes);
  }
  if (done) {
    done();
  }
}

bool StorageBackend::WriteChunks(std::span<ChunkWriteRequest> requests,
                                 const BatchCompletion& done) {
  bool all_ok = true;
  for (ChunkWriteRequest& req : requests) {
    req.ok = WriteChunk(req.key, req.data, req.bytes);
    all_ok &= req.ok;
  }
  if (done) {
    done();
  }
  return all_ok;
}

}  // namespace hcache
