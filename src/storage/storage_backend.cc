#include "src/storage/storage_backend.h"

#include "src/common/logging.h"

namespace hcache {

StorageBackend::StorageBackend(int64_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  CHECK_GT(chunk_bytes_, 0);
}

}  // namespace hcache
