// Hardware descriptions for the performance plane.
//
// GPU entries mirror Table 2 of the paper (FP16 peak FLOPS and host<->GPU transmission
// speed), extended with HBM capacity/bandwidth needed by the serving-engine model. The
// storage backend mirrors the paper's testbed: Samsung PM9A3 SSDs (6.9 GB/s read each,
// 4 of them saturating an A100's PCIe), or host DRAM for the cloud-server experiments.
#ifndef HCACHE_SRC_SIM_HARDWARE_H_
#define HCACHE_SRC_SIM_HARDWARE_H_

#include <cstdint>
#include <string>

namespace hcache {

struct GpuSpec {
  std::string name;
  double hbm_bytes = 0;        // device memory capacity
  double peak_fp16_flops = 0;  // dense FP16 peak (Table 2 "FLOPS")
  double pcie_bw = 0;          // host->device transmission speed (Table 2)
  double hbm_bw = 0;           // device memory bandwidth (for decode-iteration model)
  // Fraction of peak a large well-shaped cuBLAS GEMM achieves. Calibrated once (see
  // DESIGN.md §4.2) so the partition algorithm reproduces the paper's Table 3
  // schedules (0.70 lands 31H+1KV for 7B and 40H+8RE for OPT-30B exactly); all other
  // results follow from it.
  double gemm_efficiency = 0.70;
  double kernel_launch_overhead = 5e-6;  // per kernel

  static GpuSpec A100();  // 40G SXM4
  static GpuSpec A30();
  static GpuSpec Rtx4090();
  static GpuSpec L20();
  static GpuSpec H800();
  static GpuSpec ByName(const std::string& name);
};

struct SsdSpec {
  std::string name;
  double read_bw = 0;
  double write_bw = 0;
  double per_io_latency = 0;   // submission-to-completion for one request, queue empty
  double max_read_iops = 0;    // 4K random read ceiling
  double max_write_iops = 0;

  // Sustained throughput for a stream of `io_size`-byte requests at high queue depth:
  // the device is either bandwidth-bound (large IOs) or IOPS-bound (small IOs). This is
  // what makes the storage-layout mismatch (paper C2, Fig 6) costly in the model.
  double EffectiveReadBw(double io_size) const;
  double EffectiveWriteBw(double io_size) const;

  static SsdSpec Pm9a3();  // the testbed's Samsung PM9A3
};

struct StorageBackendSpec {
  enum class Kind { kSsdArray, kDram };

  Kind kind = Kind::kSsdArray;
  int num_devices = 4;
  SsdSpec ssd = SsdSpec::Pm9a3();

  static StorageBackendSpec SsdArray(int num_devices);
  static StorageBackendSpec Dram();

  // Aggregate sequential read/write bandwidth before the PCIe cap.
  double AggregateReadBw() const;
  double AggregateWriteBw() const;
};

// A complete evaluation platform: GPU(s) + interconnect + storage backend.
struct Platform {
  GpuSpec gpu;
  int num_gpus = 1;
  double nvlink_bw = 300e9;  // per-GPU all-gather bandwidth (NVLink gen3)
  StorageBackendSpec storage;
  // SSDs attached per GPU for multi-GPU nodes (the testbed gives each of the four
  // A100s one PM9A3; §6.1.1).
  int ssds_per_gpu() const;

  // Effective read bandwidth feeding ONE GPU: min(devices feeding it, its PCIe).
  double StorageReadBwPerGpu() const;
  // Effective write (state-saving) bandwidth per GPU.
  double StorageWriteBwPerGpu() const;

  std::string Describe() const;

  // --- presets used by the benches ---
  // §6 default testbed: 4x A100-40G + 4x PM9A3. 7B/13B use one GPU (all 4 SSDs);
  // OPT-30B uses 4 GPUs with tensor parallelism (1 SSD each).
  static Platform DefaultTestbed(int num_gpus = 1, int num_ssds = 4);
  // §6.2.1 cloud servers: storage backend is host DRAM (PCIe-limited).
  static Platform CloudDram(const GpuSpec& gpu, int num_gpus = 1);
  // Fig 12 ablation settings.
  static Platform IoSufficient();       // A30 + 4 SSDs (slow compute, ample IO)
  static Platform ComputeSufficient();  // A100 + 1 SSD (fast compute, scarce IO)
  static Platform Balanced();           // A100 + 4 SSDs
};

}  // namespace hcache

#endif  // HCACHE_SRC_SIM_HARDWARE_H_
