#include "src/sim/hardware.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace hcache {

GpuSpec GpuSpec::A100() {
  GpuSpec g;
  g.name = "A100";
  g.hbm_bytes = 40.0 * kGiB;
  g.peak_fp16_flops = 312 * kTeraFlops;
  g.pcie_bw = 32 * kGB;
  g.hbm_bw = 1555 * kGB;
  return g;
}

GpuSpec GpuSpec::A30() {
  GpuSpec g;
  g.name = "A30";
  g.hbm_bytes = 24.0 * kGiB;
  g.peak_fp16_flops = 165 * kTeraFlops;
  g.pcie_bw = 32 * kGB;
  g.hbm_bw = 933 * kGB;
  return g;
}

GpuSpec GpuSpec::Rtx4090() {
  GpuSpec g;
  g.name = "4090";
  g.hbm_bytes = 24.0 * kGiB;
  g.peak_fp16_flops = 330 * kTeraFlops;
  g.pcie_bw = 32 * kGB;
  g.hbm_bw = 1008 * kGB;
  return g;
}

GpuSpec GpuSpec::L20() {
  GpuSpec g;
  g.name = "L20";
  g.hbm_bytes = 48.0 * kGiB;
  g.peak_fp16_flops = 120 * kTeraFlops;
  g.pcie_bw = 32 * kGB;
  g.hbm_bw = 864 * kGB;
  return g;
}

GpuSpec GpuSpec::H800() {
  GpuSpec g;
  g.name = "H800";
  g.hbm_bytes = 80.0 * kGiB;
  g.peak_fp16_flops = 990 * kTeraFlops;
  g.pcie_bw = 64 * kGB;
  g.hbm_bw = 3350 * kGB;
  return g;
}

GpuSpec GpuSpec::ByName(const std::string& name) {
  if (name == "A100") {
    return A100();
  }
  if (name == "A30") {
    return A30();
  }
  if (name == "4090") {
    return Rtx4090();
  }
  if (name == "L20") {
    return L20();
  }
  if (name == "H800") {
    return H800();
  }
  HCACHE_LOG_FATAL << "unknown GPU: " << name;
  return {};
}

SsdSpec SsdSpec::Pm9a3() {
  SsdSpec s;
  s.name = "PM9A3";
  s.read_bw = 6.9 * kGB;   // §6.2.2: "One PM9A3 SSD provides a read bandwidth of 6.9 GB/s"
  s.write_bw = 4.1 * kGB;
  s.per_io_latency = 80e-6;
  s.max_read_iops = 1.0e6;
  s.max_write_iops = 180e3;
  return s;
}

namespace {

// Latency-bandwidth knee: sustained throughput for a stream of `io_size` requests is
// bw * size / (size + knee), where knee = bw / max_iops is the transfer size at which
// per-command overhead equals transfer time. Large IOs approach full bandwidth; small
// IOs degrade smoothly toward the IOPS ceiling.
double KneeBw(double bw, double max_iops, double io_size) {
  if (io_size <= 0) {
    return 0.0;
  }
  const double knee = bw / max_iops;
  return bw * io_size / (io_size + knee);
}

}  // namespace

double SsdSpec::EffectiveReadBw(double io_size) const {
  return KneeBw(read_bw, max_read_iops, io_size);
}

double SsdSpec::EffectiveWriteBw(double io_size) const {
  return KneeBw(write_bw, max_write_iops, io_size);
}

StorageBackendSpec StorageBackendSpec::SsdArray(int num_devices) {
  StorageBackendSpec b;
  b.kind = Kind::kSsdArray;
  b.num_devices = num_devices;
  return b;
}

StorageBackendSpec StorageBackendSpec::Dram() {
  StorageBackendSpec b;
  b.kind = Kind::kDram;
  b.num_devices = 1;
  return b;
}

double StorageBackendSpec::AggregateReadBw() const {
  if (kind == Kind::kDram) {
    // Host DRAM streams far faster than any PCIe link; the GPU's link is the limiter.
    return 1e15;
  }
  return num_devices * ssd.read_bw;
}

double StorageBackendSpec::AggregateWriteBw() const {
  if (kind == Kind::kDram) {
    return 1e15;
  }
  return num_devices * ssd.write_bw;
}

int Platform::ssds_per_gpu() const {
  if (storage.kind == StorageBackendSpec::Kind::kDram) {
    return 0;
  }
  return std::max(1, storage.num_devices / std::max(1, num_gpus));
}

double Platform::StorageReadBwPerGpu() const {
  const double devices =
      storage.kind == StorageBackendSpec::Kind::kDram
          ? storage.AggregateReadBw()
          : static_cast<double>(ssds_per_gpu()) * storage.ssd.read_bw;
  return std::min(devices, gpu.pcie_bw);
}

double Platform::StorageWriteBwPerGpu() const {
  const double devices =
      storage.kind == StorageBackendSpec::Kind::kDram
          ? storage.AggregateWriteBw()
          : static_cast<double>(ssds_per_gpu()) * storage.ssd.write_bw;
  return std::min(devices, gpu.pcie_bw);
}

std::string Platform::Describe() const {
  std::ostringstream os;
  os << num_gpus << "x " << gpu.name << " + ";
  if (storage.kind == StorageBackendSpec::Kind::kDram) {
    os << "DRAM backend";
  } else {
    os << storage.num_devices << "x " << storage.ssd.name;
  }
  return os.str();
}

Platform Platform::DefaultTestbed(int num_gpus, int num_ssds) {
  Platform p;
  p.gpu = GpuSpec::A100();
  p.num_gpus = num_gpus;
  p.storage = StorageBackendSpec::SsdArray(num_ssds);
  return p;
}

Platform Platform::CloudDram(const GpuSpec& gpu, int num_gpus) {
  Platform p;
  p.gpu = gpu;
  p.num_gpus = num_gpus;
  p.storage = StorageBackendSpec::Dram();
  return p;
}

Platform Platform::IoSufficient() {
  Platform p;
  p.gpu = GpuSpec::A30();
  p.storage = StorageBackendSpec::SsdArray(4);
  return p;
}

Platform Platform::ComputeSufficient() {
  Platform p;
  p.gpu = GpuSpec::A100();
  p.storage = StorageBackendSpec::SsdArray(1);
  return p;
}

Platform Platform::Balanced() {
  Platform p;
  p.gpu = GpuSpec::A100();
  p.storage = StorageBackendSpec::SsdArray(4);
  return p;
}

}  // namespace hcache
