#include "src/sim/gpu_timing.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/model/cost_model.h"

namespace hcache {

int64_t RoundUpToTile(int64_t rows) {
  if (rows <= 0) {
    return 0;
  }
  return (rows + kCublasTileRows - 1) / kCublasTileRows * kCublasTileRows;
}

GpuTimingModel::GpuTimingModel(const GpuSpec& gpu, int tensor_parallel)
    : gpu_(gpu), tp_(tensor_parallel) {
  CHECK_GE(tp_, 1);
}

double GpuTimingModel::GemmTime(int64_t m, int64_t k, int64_t n) const {
  if (m <= 0 || k <= 0 || n <= 0) {
    return 0.0;
  }
  const double rows = static_cast<double>(RoundUpToTile(m));
  const double flops = 2.0 * rows * static_cast<double>(k) * static_cast<double>(n);
  return flops / effective_flops() + gpu_.kernel_launch_overhead;
}

double GpuTimingModel::HiddenToKvTime(const ModelConfig& cfg, int64_t n) const {
  // Each GPU projects to its shard of the K and V heads: [n, D] x [D, 2*kv_dim/tp].
  const double t = GemmTime(n, cfg.hidden_dim, 2 * cfg.kv_dim() / tp_);
  // RoPE + KV-cache scatter epsilon: one extra pass over the produced elements at HBM
  // speed. Small but keeps short-context numbers honest.
  const double eps =
      2.0 * static_cast<double>(n) * static_cast<double>(cfg.kv_dim() / tp_) *
      static_cast<double>(cfg.state_dtype_bytes) / gpu_.hbm_bw;
  return t + eps;
}

double GpuTimingModel::TokenRecomputeTimePerLayer(const ModelConfig& cfg, int64_t n) const {
  // Paper formula: (24 n D^2 + n^2 D) / FLOPS, with the same tile/efficiency treatment
  // as other kernels; work divides across TP ranks.
  const double rows = static_cast<double>(RoundUpToTile(n));
  const double d = static_cast<double>(cfg.hidden_dim);
  const double flops = 24.0 * rows * d * d + static_cast<double>(n) * static_cast<double>(n) * d;
  // ~7 kernels per layer (QKV, scores, AV, out, 2-3 FFN).
  return flops / static_cast<double>(tp_) / effective_flops() +
         7.0 * gpu_.kernel_launch_overhead;
}

double GpuTimingModel::PrefillTime(const ModelConfig& cfg, int64_t n) const {
  return static_cast<double>(cfg.num_layers) * TokenRecomputeTimePerLayer(cfg, n);
}

double GpuTimingModel::DecodeIterationTime(const ModelConfig& cfg, int64_t batch_size,
                                           int64_t total_context_tokens) const {
  if (batch_size <= 0) {
    return 0.0;
  }
  // Decode is memory-bound: every iteration streams the weights once plus each
  // sequence's KV history; compute time is negligible next to that at batch <= ~64.
  const double weight_bytes =
      ApproxParamCount(cfg) * static_cast<double>(cfg.state_dtype_bytes) / tp_;
  const double kv_bytes =
      static_cast<double>(total_context_tokens) * static_cast<double>(cfg.KvBytesPerToken()) / tp_;
  const double mem_time = (weight_bytes + kv_bytes) / gpu_.hbm_bw;
  const double launch = static_cast<double>(cfg.num_layers) * 7.0 * gpu_.kernel_launch_overhead;
  return mem_time + launch;
}

double GpuTimingModel::SnapshotTime(const ModelConfig& cfg, int64_t n) const {
  return HiddenIoBytesPerLayer(cfg, static_cast<double>(n)) / gpu_.pcie_bw;
}

double ApproxParamCount(const ModelConfig& cfg) {
  const double d = static_cast<double>(cfg.hidden_dim);
  const double kv = static_cast<double>(cfg.kv_dim());
  const double ffn_mats = cfg.activation == ActivationKind::kSwiGlu ? 3.0 : 2.0;
  const double per_layer = 2.0 * d * d          // Wq, Wo
                           + 2.0 * d * kv       // Wk, Wv
                           + ffn_mats * d * static_cast<double>(cfg.ffn_dim);
  return static_cast<double>(cfg.num_layers) * per_layer +
         2.0 * static_cast<double>(cfg.vocab_size) * d;  // embedding + lm head
}

}  // namespace hcache
