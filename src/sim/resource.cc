#include "src/sim/resource.h"

#include <algorithm>

#include "src/common/logging.h"

namespace hcache {

SerialResource::SerialResource(Simulator* sim, std::string name)
    : sim_(sim), name_(std::move(name)) {
  CHECK(sim != nullptr);
}

double SerialResource::Enqueue(double duration, Simulator::Callback on_done) {
  CHECK_GE(duration, 0.0);
  const double start = std::max(sim_->now(), next_free_);
  const double done = start + duration;
  next_free_ = done;
  total_busy_ += duration;
  if (on_done) {
    sim_->ScheduleAt(done, std::move(on_done));
  }
  return done;
}

double SerialResource::Utilization(double window_start, double window_end) const {
  const double span = window_end - window_start;
  if (span <= 0.0) {
    return 0.0;
  }
  return std::min(1.0, total_busy_ / span);
}

}  // namespace hcache
