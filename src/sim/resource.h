// FCFS serial resources for the DES.
//
// A `SerialResource` executes one work item at a time in submission order — the model
// for a CUDA stream, a PCIe DMA engine, an NVMe channel, or an NVLink direction. The
// paper's implementation (§5) uses dedicated streams for upstream transmission and
// downstream snapshots plus the compute stream; each maps to one SerialResource here,
// and cudaEvent-style cross-stream ordering is expressed by chaining completion
// callbacks.
#ifndef HCACHE_SRC_SIM_RESOURCE_H_
#define HCACHE_SRC_SIM_RESOURCE_H_

#include <string>

#include "src/sim/event_queue.h"

namespace hcache {

class SerialResource {
 public:
  SerialResource(Simulator* sim, std::string name);

  // Submits a work item lasting `duration` seconds. The item starts at
  // max(now, previous completion) and `on_done` fires at its completion time.
  // Returns the completion time.
  double Enqueue(double duration, Simulator::Callback on_done = nullptr);

  // Earliest time a newly submitted item could start.
  double next_free() const { return next_free_; }

  // Total busy seconds accumulated (for utilization / bubble accounting).
  double total_busy() const { return total_busy_; }

  // Busy fraction of the window [window_start, window_end].
  double Utilization(double window_start, double window_end) const;

  const std::string& name() const { return name_; }

 private:
  Simulator* sim_;
  std::string name_;
  double next_free_ = 0.0;
  double total_busy_ = 0.0;
};

}  // namespace hcache

#endif  // HCACHE_SRC_SIM_RESOURCE_H_
