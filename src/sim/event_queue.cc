#include "src/sim/event_queue.h"

#include <algorithm>

#include "src/common/logging.h"

namespace hcache {

void Simulator::Schedule(double delay, Callback cb) {
  ScheduleAt(now_ + std::max(0.0, delay), std::move(cb));
}

void Simulator::ScheduleAt(double time, Callback cb) {
  CHECK_GE(time, now_);
  queue_.push(Event{time, next_seq_++, std::move(cb)});
}

double Simulator::Run() {
  while (!queue_.empty()) {
    // The callback may schedule more events; copy out before popping.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.cb();
  }
  return now_;
}

double Simulator::RunUntil(double deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.cb();
  }
  return now_;
}

}  // namespace hcache
