// Discrete-event simulation core.
//
// The performance plane replays HCache's restoration schedules and the serving engine's
// iteration loop against modeled hardware. `Simulator` is a classic event-calendar DES:
// callbacks scheduled at absolute times, executed in (time, insertion-order) order so
// simultaneous events are deterministic.
#ifndef HCACHE_SRC_SIM_EVENT_QUEUE_H_
#define HCACHE_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hcache {

class Simulator {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  // Schedules `cb` to run `delay` seconds from now. Negative delays are clamped to 0.
  void Schedule(double delay, Callback cb);

  // Schedules `cb` at an absolute time (>= now).
  void ScheduleAt(double time, Callback cb);

  // Runs events until the calendar empties. Returns the final clock value.
  double Run();

  // Runs events with time <= `deadline`; the clock ends at min(deadline, last event).
  double RunUntil(double deadline);

  uint64_t events_processed() const { return events_processed_; }
  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_SIM_EVENT_QUEUE_H_
