// GPU kernel-time model.
//
// Converts the §3.2 FLOP formulas into wall-clock on a given GPU. Two behaviours the
// paper leans on are modeled explicitly:
//
//   1. cuBLAS tile quantization (§4.1.1): GEMM time is a step function of the row
//      count — an m of 794 costs the same as the next tile multiple (1024 here). This
//      is why the paper rejects token-wise partitioning and fixes mini-batches at
//      "an optimized size in cuBLAS". Fig 13b plots exactly this step function.
//   2. A calibrated efficiency factor: dense GEMMs reach a fraction of peak FLOPS
//      (0.66 by calibration against the paper's Table 3 schedules).
//
// With tensor parallelism each GPU holds 1/tp of every projection, so per-GPU GEMM
// work divides by tp (communication is handled by core/multi_gpu).
#ifndef HCACHE_SRC_SIM_GPU_TIMING_H_
#define HCACHE_SRC_SIM_GPU_TIMING_H_

#include <cstdint>

#include "src/model/config.h"
#include "src/sim/hardware.h"

namespace hcache {

// Row-count granularity at which cuBLAS kernels on these GPUs run at full tile
// efficiency. 64 rows per CTA tile reproduces both halves of Fig 13: the visible step
// function of GEMM time vs token count (13b) and the ~12% token-wise partition penalty
// (13a), where the recompute share's row count lands mid-tile.
inline constexpr int64_t kCublasTileRows = 64;

// The "+round" ablation (Fig 13a) snaps the token split to this coarser kernel-friendly
// granularity (the paper rounds 794 -> 768).
inline constexpr int64_t kRoundUpGranularity = 256;

// Rounds a GEMM row count up to the tile the kernel actually executes.
int64_t RoundUpToTile(int64_t rows);

class GpuTimingModel {
 public:
  explicit GpuTimingModel(const GpuSpec& gpu, int tensor_parallel = 1);

  // Wall time of one [m,k]x[k,n] GEMM, including tile quantization and launch cost.
  double GemmTime(int64_t m, int64_t k, int64_t n) const;

  // Per-layer restoration compute: project n tokens' hidden states to K and V
  // (one [n, D] x [D, 2*kv_dim] GEMM) plus the RoPE/copy epsilon.
  double HiddenToKvTime(const ModelConfig& cfg, int64_t n) const;

  // Per-layer full prefill/recompute time for n tokens (paper's C_attn + C_ffn).
  double TokenRecomputeTimePerLayer(const ModelConfig& cfg, int64_t n) const;

  // Whole-model prefill time for an n-token chunk (used by the serving engine).
  double PrefillTime(const ModelConfig& cfg, int64_t n) const;

  // One decode iteration for a batch: memory-bound weight + KV traffic, plus launch
  // overheads. `total_context_tokens` is the sum of context lengths across the batch.
  double DecodeIterationTime(const ModelConfig& cfg, int64_t batch_size,
                             int64_t total_context_tokens) const;

  // Device-to-host snapshot of one layer's hidden states for n tokens (cudaMemcpy over
  // PCIe; the first stage of two-stage saving).
  double SnapshotTime(const ModelConfig& cfg, int64_t n) const;

  const GpuSpec& gpu() const { return gpu_; }
  int tensor_parallel() const { return tp_; }
  double effective_flops() const { return gpu_.peak_fp16_flops * gpu_.gemm_efficiency; }

 private:
  GpuSpec gpu_;
  int tp_;
};

// Approximate parameter count from a config (weights-traffic term of the decode model).
double ApproxParamCount(const ModelConfig& cfg);

}  // namespace hcache

#endif  // HCACHE_SRC_SIM_GPU_TIMING_H_
