#include "src/core/restorer.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/model/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/gpu_timing.h"
#include "src/sim/resource.h"
#include "src/storage/io_timing.h"

namespace hcache {

const char* RestoreMethodName(RestoreMethod m) {
  switch (m) {
    case RestoreMethod::kRecompute:
      return "Recompute";
    case RestoreMethod::kKvOffload:
      return "KV-Offload";
    case RestoreMethod::kHCache:
      return "HCache";
    case RestoreMethod::kHCacheOnly:
      return "HCache-O";
    case RestoreMethod::kNaiveHybrid:
      return "NaiveHybrid";
    case RestoreMethod::kIdeal:
      return "Ideal";
  }
  return "?";
}

double RestoreResult::TokensPerSecond() const {
  if (total_time <= 0) {
    return 0.0;
  }
  return static_cast<double>(history_tokens) / total_time;
}

std::string RestoreResult::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%-11s n=%-6lld t=%8.2fms speed=%7.1fK tok/s  compute=%6.2fms io=%6.2fms "
                "bubble(c/io)=%5.2f/%5.2fms",
                RestoreMethodName(method), static_cast<long long>(history_tokens),
                total_time * 1e3, TokensPerSecond() / 1e3, compute_busy * 1e3, io_busy * 1e3,
                compute_bubble * 1e3, io_bubble * 1e3);
  return buf;
}

Restorer::Restorer(const Platform& platform, const ModelConfig& cfg, StorageLayout layout,
                   int64_t chunk_tokens, ChunkCodec codec)
    : platform_(platform),
      cfg_(cfg),
      layout_(layout),
      chunk_tokens_(chunk_tokens),
      codec_(codec) {}

LayerProfile Restorer::Profile(int64_t history_tokens) const {
  return ProfileLayer(platform_, cfg_, history_tokens, layout_, chunk_tokens_, codec_);
}

PartitionScheme Restorer::Schedule(int64_t history_tokens) const {
  return SolveLayerWise(Profile(history_tokens), cfg_.num_layers);
}

double Restorer::PipelineFillLatency() const {
  return StorageIoModel(platform_).DeviceLatency();
}

Restorer::PipelineTotals Restorer::RunPipeline(
    const std::vector<double>& pre_compute,
    const std::vector<std::pair<double, double>>& io_tasks) const {
  Simulator sim;
  SerialResource compute(&sim, "compute");
  SerialResource io(&sim, "io");
  for (double d : pre_compute) {
    compute.Enqueue(d);
  }
  bool first = true;
  for (const auto& [io_dur, compute_dur] : io_tasks) {
    const double dur = io_dur + (first ? PipelineFillLatency() : 0.0);
    first = false;
    const double cd = compute_dur;
    io.Enqueue(dur, cd > 0 ? Simulator::Callback([&compute, cd] { compute.Enqueue(cd); })
                           : Simulator::Callback());
  }
  sim.Run();
  PipelineTotals t;
  t.makespan = std::max(compute.next_free(), io.next_free());
  t.compute_busy = compute.total_busy();
  t.io_busy = io.total_busy();
  return t;
}

RestoreResult Restorer::Restore(RestoreMethod method, int64_t history_tokens) const {
  CHECK_GT(history_tokens, 0);
  const LayerProfile p = Profile(history_tokens);
  const double n = static_cast<double>(history_tokens);
  const int64_t nl = cfg_.num_layers;

  RestoreResult r;
  r.method = method;
  r.history_tokens = history_tokens;

  std::vector<double> pre;
  std::vector<std::pair<double, double>> io_tasks;

  switch (method) {
    case RestoreMethod::kIdeal:
      return r;

    case RestoreMethod::kRecompute:
      pre.assign(static_cast<size_t>(nl), p.c_token);
      r.flops = static_cast<double>(nl) * RecomputeFlopsPerLayer(cfg_, n);
      break;

    case RestoreMethod::kKvOffload:
      io_tasks.assign(static_cast<size_t>(nl), {p.io_kv, 0.0});
      r.bytes_read = static_cast<double>(nl) * KvIoBytesPerLayer(cfg_, n);
      break;

    case RestoreMethod::kHCacheOnly:
      io_tasks.assign(static_cast<size_t>(nl), {p.io_hidden, p.c_hidden});
      r.bytes_read = static_cast<double>(nl) * HiddenIoBytesPerLayer(cfg_, n, codec_);
      r.hidden_bytes_read = r.bytes_read;
      r.flops = static_cast<double>(nl) * HiddenToKvFlopsPerLayer(cfg_, n);
      r.scheme.layers_hidden = nl;
      r.scheme.complement = ComplementMethod::kNone;
      break;

    case RestoreMethod::kHCache: {
      // SolveLayerWise performs plan selection internally (mixed schedule vs pure
      // strategies); execute whatever plan it returns.
      const PartitionScheme s = SolveLayerWise(p, nl);
      r.scheme = s;
      switch (s.complement) {
        case ComplementMethod::kNone:
          io_tasks.assign(static_cast<size_t>(nl), {p.io_hidden, p.c_hidden});
          r.bytes_read = static_cast<double>(nl) * HiddenIoBytesPerLayer(cfg_, n, codec_);
          r.hidden_bytes_read = r.bytes_read;
          r.flops = static_cast<double>(nl) * HiddenToKvFlopsPerLayer(cfg_, n);
          break;
        case ComplementMethod::kKvOffload:
          // Hidden layers stream first (each triggers its projection); the KV layers'
          // transfers fill the transmission slack behind them (Fig 8d).
          io_tasks.assign(static_cast<size_t>(s.layers_hidden), {p.io_hidden, p.c_hidden});
          io_tasks.insert(io_tasks.end(), static_cast<size_t>(s.layers_other),
                          {p.io_kv, 0.0});
          r.hidden_bytes_read =
              static_cast<double>(s.layers_hidden) * HiddenIoBytesPerLayer(cfg_, n, codec_);
          r.bytes_read = r.hidden_bytes_read +
                         static_cast<double>(s.layers_other) * KvIoBytesPerLayer(cfg_, n);
          r.flops = static_cast<double>(s.layers_hidden) * HiddenToKvFlopsPerLayer(cfg_, n);
          break;
        case ComplementMethod::kRecompute:
          // The first L_O layers recompute from tokens while hidden states for the
          // remaining layers prefetch (§4.1.2).
          pre.assign(static_cast<size_t>(s.layers_other), p.c_token);
          io_tasks.assign(static_cast<size_t>(s.layers_hidden), {p.io_hidden, p.c_hidden});
          r.bytes_read =
              static_cast<double>(s.layers_hidden) * HiddenIoBytesPerLayer(cfg_, n, codec_);
          r.hidden_bytes_read = r.bytes_read;
          r.flops = static_cast<double>(s.layers_other) * RecomputeFlopsPerLayer(cfg_, n) +
                    static_cast<double>(s.layers_hidden) * HiddenToKvFlopsPerLayer(cfg_, n);
          break;
      }
      break;
    }

    case RestoreMethod::kNaiveHybrid: {
      const NaiveHybridScheme s = SolveNaiveHybrid(p, nl);
      pre.assign(static_cast<size_t>(s.layers_recompute), p.c_token);
      io_tasks.assign(static_cast<size_t>(s.layers_kv), {p.io_kv, 0.0});
      r.bytes_read = static_cast<double>(s.layers_kv) * KvIoBytesPerLayer(cfg_, n);
      r.flops = static_cast<double>(s.layers_recompute) * RecomputeFlopsPerLayer(cfg_, n);
      break;
    }
  }

  const PipelineTotals t = RunPipeline(pre, io_tasks);
  r.total_time = t.makespan;
  r.compute_busy = t.compute_busy;
  r.io_busy = t.io_busy;
  r.compute_bubble = t.makespan - t.compute_busy;
  r.io_bubble = t.makespan - t.io_busy;
  // flops/bytes are whole-model quantities: under tensor parallelism every GPU works
  // on a shard, so the totals already cover the whole system; the all-gather moves
  // data over NVLink, not storage, and does not add to bytes_read.
  return r;
}

RestoreResult Restorer::RestorePipelineParallel(RestoreMethod method, int64_t history_tokens,
                                                int num_stages) const {
  CHECK_GE(num_stages, 1);
  CHECK_LE(num_stages, platform_.num_gpus);
  // Each stage is a single-GPU sub-platform serving ceil(NL / stages) layers with its
  // share of the storage devices. Stages run concurrently and independently (no
  // cross-stage data dependency in restoration), so the makespan is one stage's time
  // and totals (bytes, FLOPs, busy time) sum across stages.
  Platform stage_platform = platform_;
  stage_platform.num_gpus = 1;
  if (stage_platform.storage.kind == StorageBackendSpec::Kind::kSsdArray) {
    stage_platform.storage.num_devices =
        std::max(1, platform_.storage.num_devices / num_stages);
  }
  ModelConfig stage_cfg = cfg_;
  stage_cfg.num_layers = (cfg_.num_layers + num_stages - 1) / num_stages;

  const Restorer stage(stage_platform, stage_cfg, layout_, chunk_tokens_, codec_);
  RestoreResult r = stage.Restore(method, history_tokens);
  const double g = static_cast<double>(num_stages);
  r.bytes_read *= g;
  r.hidden_bytes_read *= g;
  r.flops *= g;
  r.compute_busy *= g;
  r.io_busy *= g;
  return r;
}

RestoreResult Restorer::RestoreTokenWise(int64_t history_tokens, bool round_to_tile) const {
  const LayerProfile p = Profile(history_tokens);
  const TokenPartition tp = SolveTokenWise(p, history_tokens, round_to_tile);
  const int64_t nl = cfg_.num_layers;
  GpuTimingModel gpu(platform_.gpu, platform_.num_gpus);

  RestoreResult r;
  r.method = RestoreMethod::kHCache;
  r.history_tokens = history_tokens;
  r.scheme.layers_hidden = nl;

  const double n = static_cast<double>(history_tokens);
  const double frac_h = static_cast<double>(tp.tokens_hidden) / n;
  const double frac_o = static_cast<double>(tp.tokens_other) / n;
  // Real per-layer kernel times (tile quantization applies — the effect Fig 13 shows).
  const double c_h_part = tp.tokens_hidden > 0 ? gpu.HiddenToKvTime(cfg_, tp.tokens_hidden) : 0.0;

  std::vector<double> pre;
  std::vector<std::pair<double, double>> io_tasks;
  if (p.c_hidden > p.io_hidden) {
    // Complement = KV offload for the token suffix, inside every layer.
    const double io_per_layer = p.io_hidden * frac_h + p.io_kv * frac_o;
    io_tasks.assign(static_cast<size_t>(nl), {io_per_layer, c_h_part});
    r.hidden_bytes_read =
        static_cast<double>(nl) * HiddenIoBytesPerLayer(cfg_, n, codec_) * frac_h;
    r.bytes_read =
        r.hidden_bytes_read + static_cast<double>(nl) * KvIoBytesPerLayer(cfg_, n) * frac_o;
    r.flops = static_cast<double>(nl) *
              HiddenToKvFlopsPerLayer(cfg_, static_cast<double>(tp.tokens_hidden));
  } else {
    // Complement = recompute the token suffix, inside every layer. Each layer's compute
    // stage carries both the suffix recompute and the hidden projection.
    const double c_t_part =
        tp.tokens_other > 0 ? gpu.TokenRecomputeTimePerLayer(cfg_, tp.tokens_other) : 0.0;
    const double io_per_layer = p.io_hidden * frac_h;
    io_tasks.assign(static_cast<size_t>(nl), {io_per_layer, c_h_part + c_t_part});
    r.bytes_read = static_cast<double>(nl) * HiddenIoBytesPerLayer(cfg_, n, codec_) * frac_h;
    r.hidden_bytes_read = r.bytes_read;
    r.flops = static_cast<double>(nl) *
              (HiddenToKvFlopsPerLayer(cfg_, static_cast<double>(tp.tokens_hidden)) +
               RecomputeFlopsPerLayer(cfg_, static_cast<double>(tp.tokens_other)));
  }

  const PipelineTotals t = RunPipeline(pre, io_tasks);
  r.total_time = t.makespan;
  r.compute_busy = t.compute_busy;
  r.io_busy = t.io_busy;
  r.compute_bubble = t.makespan - t.compute_busy;
  r.io_bubble = t.makespan - t.io_busy;
  return r;
}

}  // namespace hcache
