#include "src/core/shared_prefix.h"

#include <cstring>
#include <numeric>

#include "src/common/logging.h"
#include "src/storage/codec.h"

namespace hcache {

namespace {

uint64_t HashTokens(const std::vector<int32_t>& tokens) {
  // FNV-1a over the token stream. This only PICKS A BUCKET — InternPrefix compares
  // the full token vectors before sharing, so a collision costs one comparison,
  // never a wrong share.
  uint64_t h = 1469598103934665603ull;
  for (int32_t t : tokens) {
    for (int b = 0; b < 4; ++b) {
      h ^= static_cast<uint64_t>((t >> (8 * b)) & 0xff);
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

SharedPrefixManager::SuffixSink::SuffixSink(StorageBackend* store, const ModelConfig& cfg,
                                            int64_t context_id, int64_t offset,
                                            int64_t chunk_tokens, ChunkCodec codec)
    : writer_(store, /*flush_pool=*/nullptr, cfg, context_id, chunk_tokens, codec),
      offset_(offset),
      hidden_dim_(cfg.hidden_dim) {}

void SharedPrefixManager::SuffixSink::OnLayerInput(int64_t layer, const Tensor& hidden,
                                                   const int32_t* positions, int64_t n) {
  // Collect the rows at positions >= offset and rebase them to suffix-local indices.
  std::vector<int64_t> keep;
  for (int64_t i = 0; i < n; ++i) {
    if (positions[i] >= offset_) {
      keep.push_back(i);
    }
  }
  if (keep.empty()) {
    return;
  }
  Tensor rows({static_cast<int64_t>(keep.size()), hidden_dim_});
  std::vector<int32_t> rebased(keep.size());
  for (size_t j = 0; j < keep.size(); ++j) {
    std::memcpy(rows.row(static_cast<int64_t>(j)), hidden.row(keep[j]),
                static_cast<size_t>(hidden_dim_) * sizeof(float));
    rebased[j] = static_cast<int32_t>(positions[keep[j]] - offset_);
  }
  writer_.OnLayerInput(layer, rows, rebased.data(), static_cast<int64_t>(keep.size()));
}

SharedPrefixManager::SharedPrefixManager(Transformer* model, StorageBackend* store,
                                         int64_t chunk_tokens, ChunkCodec codec)
    : model_(model), store_(store), chunk_tokens_(chunk_tokens), codec_(codec) {
  CHECK(model != nullptr);
  CHECK(store != nullptr);
}

uint64_t SharedPrefixManager::TokenHash(const std::vector<int32_t>& tokens) const {
  return token_hash_for_test_ ? token_hash_for_test_(tokens) : HashTokens(tokens);
}

int64_t SharedPrefixManager::InternPrefix(const std::vector<int32_t>& tokens,
                                          KvBlockPool* pool) {
  CHECK(!tokens.empty());
  const uint64_t hash = TokenHash(tokens);
  // Walk the bucket and share only on TOKEN equality. A hash collision between two
  // distinct prompts (same length or not) falls through and allocates a fresh prefix
  // — the old length-only guard here would have handed one prompt the other's hidden
  // states.
  const auto [first, last] = hash_to_prefix_.equal_range(hash);
  for (auto it = first; it != last; ++it) {
    PrefixInfo& info = prefixes_.at(it->second);
    if (info.tokens == tokens) {
      ++info.ref_count;
      bytes_deduped_ += info.encoded_bytes;
      return info.prefix_id;
    }
  }

  const int64_t id = next_prefix_id_++;
  // One-time prefill of the prefix with capture; its KV is scratch and dropped.
  HiddenStateWriter writer(store_, nullptr, model_->config(), id, chunk_tokens_, codec_);
  PagedKvSequence scratch(pool);
  model_->Forward(tokens, &scratch, &writer);
  writer.Seal();

  PrefixInfo info;
  info.prefix_id = id;
  info.length = static_cast<int64_t>(tokens.size());
  info.ref_count = 1;
  // What a repeat intern actually avoids storing: the prefix's encoded footprint
  // under the ACTIVE codec (headers included), not a sizeof(float) estimate.
  info.encoded_bytes = writer.encoded_bytes_written();
  info.tokens = tokens;
  info.token_hash = hash;
  prefixes_[id] = std::move(info);
  hash_to_prefix_.emplace(hash, id);
  return id;
}

void SharedPrefixManager::ReleasePrefix(int64_t prefix_id) {
  auto it = prefixes_.find(prefix_id);
  CHECK(it != prefixes_.end());
  CHECK_GT(it->second.ref_count, 0);
  if (--it->second.ref_count == 0) {
    store_->DeleteContext(prefix_id);
    const auto [first, last] = hash_to_prefix_.equal_range(it->second.token_hash);
    for (auto h = first; h != last; ++h) {
      if (h->second == prefix_id) {
        hash_to_prefix_.erase(h);
        break;
      }
    }
    prefixes_.erase(it);
  }
}

HiddenStateSink* SharedPrefixManager::BeginSuffixCapture(int64_t context_id,
                                                         int64_t prefix_id) {
  const auto pit = prefixes_.find(prefix_id);
  CHECK(pit != prefixes_.end()) << "unknown prefix " << prefix_id;
  auto& sink = sinks_[context_id];
  if (sink == nullptr) {
    sink = std::make_unique<SuffixSink>(store_, model_->config(), context_id,
                                        pit->second.length, chunk_tokens_, codec_);
    context_prefix_[context_id] = prefix_id;
    // The context now depends on the prefix's chunks staying restorable: hold a
    // reference until DropContext, so the interner's ReleasePrefix cannot delete
    // them under a live capture (which left RestoreContext to CHECK-crash).
    ++pit->second.ref_count;
  } else {
    CHECK_EQ(context_prefix_.at(context_id), prefix_id);
  }
  return sink.get();
}

void SharedPrefixManager::SealContext(int64_t context_id) {
  const auto it = sinks_.find(context_id);
  CHECK(it != sinks_.end());
  it->second->Seal();
}

bool SharedPrefixManager::RestoreContext(int64_t context_id, int64_t prefix_id,
                                         PagedKvSequence* seq) {
  const ModelConfig& cfg = model_->config();
  const auto pit = prefixes_.find(prefix_id);
  CHECK(pit != prefixes_.end());
  const int64_t plen = pit->second.length;
  CHECK(!seq->has_kv());
  const int64_t n = seq->num_tokens();
  CHECK_GE(n, plen);
  const int64_t slen = n - plen;

  const HiddenStateReader reader(store_, cfg, chunk_tokens_);
  for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
    if (!reader.LayerComplete(prefix_id, layer, plen, codec_) ||
        (slen > 0 && !reader.LayerComplete(context_id, layer, slen, codec_))) {
      return false;
    }
  }
  const int64_t bt = seq->pool()->block_tokens();
  if ((n + bt - 1) / bt > seq->pool()->num_free()) {
    return false;
  }

  seq->ResetForRestore();
  CHECK(seq->EnsureCapacity(n));
  seq->CommitTokens(n);

  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  Tensor hidden({n, cfg.hidden_dim});
  for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
    const Tensor prefix_rows = reader.ReadLayer(prefix_id, layer, plen);
    std::memcpy(hidden.row(0), prefix_rows.data(),
                static_cast<size_t>(plen * cfg.hidden_dim) * sizeof(float));
    if (slen > 0) {
      const Tensor suffix_rows = reader.ReadLayer(context_id, layer, slen);
      std::memcpy(hidden.row(plen), suffix_rows.data(),
                  static_cast<size_t>(slen * cfg.hidden_dim) * sizeof(float));
    }
    Tensor k, v;
    model_->RestoreLayerKv(layer, hidden, positions.data(), &k, &v);
    seq->WriteKv(layer, 0, k, v);
  }
  return true;
}

void SharedPrefixManager::DropContext(int64_t context_id) {
  sinks_.erase(context_id);
  const auto cit = context_prefix_.find(context_id);
  if (cit != context_prefix_.end()) {
    const int64_t prefix_id = cit->second;
    context_prefix_.erase(cit);
    // Release the reference BeginSuffixCapture took; the prefix (and its chunks)
    // go away only when the interner and every capturing context are done with it.
    ReleasePrefix(prefix_id);
  }
  store_->DeleteContext(context_id);
}

const SharedPrefixManager::PrefixInfo* SharedPrefixManager::GetPrefix(
    int64_t prefix_id) const {
  const auto it = prefixes_.find(prefix_id);
  return it == prefixes_.end() ? nullptr : &it->second;
}

}  // namespace hcache
