// The bubble-free state-partition algorithm (paper §4.1).
//
// Given the offline profile, choose how many layers restore via hidden states (L_H) and
// how many via the resource-complementary method (L_O) so that the compute stream and
// the transmission stream finish simultaneously:
//
//   argmin_{L_H, L_O}  max(C_H*L_H, IO_H*L_H + IO_KV*L_O)   s.t. L_H + L_O = N_layers
//
// Regime selection follows the paper: when C_H > IO_H (compute-bound; transmission has
// slack) the complement is KV offload — its layers cost IO only. When C_H <= IO_H
// (IO-bound) the complement is token recomputation — its layers cost compute only.
//
// Token-wise partitioning (Fig 8a/8c) is implemented for the Fig 13 ablation, including
// the tile round-up variant; layer-wise is what HCache ships (§4.1.1 explains why).
#ifndef HCACHE_SRC_CORE_PARTITION_H_
#define HCACHE_SRC_CORE_PARTITION_H_

#include <cstdint>
#include <string>

#include "src/core/profiler.h"

namespace hcache {

enum class ComplementMethod { kNone, kKvOffload, kRecompute };

const char* ComplementName(ComplementMethod m);

struct PartitionScheme {
  int64_t layers_hidden = 0;  // L_H: restored from hidden states
  int64_t layers_other = 0;   // L_O: restored via `complement`
  ComplementMethod complement = ComplementMethod::kNone;

  // Predicted makespan of the schedule under the profile it was derived from.
  double predicted_time = 0;
  // Predicted idle time on the slower-finishing stream (0 when perfectly bubble-free).
  double predicted_bubble = 0;

  // Per-token storage footprint of this schedule in *stored elements* (the unit the
  // paper's Table 3 reports): hidden layers store D, KV layers store 2D, recompute
  // layers store nothing.
  int64_t StoredElementsPerToken(const ModelConfig& cfg) const;
  int64_t StoredBytesPerToken(const ModelConfig& cfg) const;

  std::string ToString() const;
};

// Layer-wise bubble-free solve (the shipped algorithm, §4.1.2).
PartitionScheme SolveLayerWise(const LayerProfile& profile, int64_t num_layers);

// Token-wise partition (ablation): split the n-token history into a hidden-state part
// and a KV-offload part within every layer. When `round_to_tile`, the hidden token
// count is rounded to the nearest cuBLAS-friendly multiple (Fig 13's "+round" variant).
struct TokenPartition {
  int64_t tokens_hidden = 0;
  int64_t tokens_other = 0;
  double predicted_time = 0;  // per-layer steady-state stage time
};
TokenPartition SolveTokenWise(const LayerProfile& profile, int64_t history_tokens,
                              bool round_to_tile);

// Reference schedule for the NaiveHybrid baseline (§6.3.1): mix token recomputation
// and KV offload only — no hidden states. Returns layers assigned to recompute in
// `layers_other` with complement kRecompute and layers_hidden reinterpreted as the KV
// -offloaded count by the caller; provided as its own type for clarity.
struct NaiveHybridScheme {
  int64_t layers_kv = 0;
  int64_t layers_recompute = 0;
  double predicted_time = 0;
};
NaiveHybridScheme SolveNaiveHybrid(const LayerProfile& profile, int64_t num_layers);

}  // namespace hcache

#endif  // HCACHE_SRC_CORE_PARTITION_H_
