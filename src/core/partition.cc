#include "src/core/partition.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"
#include "src/sim/gpu_timing.h"

namespace hcache {

const char* ComplementName(ComplementMethod m) {
  switch (m) {
    case ComplementMethod::kNone:
      return "none";
    case ComplementMethod::kKvOffload:
      return "kv-offload";
    case ComplementMethod::kRecompute:
      return "recompute";
  }
  return "?";
}

int64_t PartitionScheme::StoredElementsPerToken(const ModelConfig& cfg) const {
  const int64_t hidden_elems = cfg.hidden_dim;
  const int64_t kv_elems = 2 * cfg.kv_dim();
  int64_t total = layers_hidden * hidden_elems;
  if (complement == ComplementMethod::kKvOffload) {
    total += layers_other * kv_elems;
  }
  // Recomputed layers store nothing beyond the raw tokens (negligible).
  return total;
}

int64_t PartitionScheme::StoredBytesPerToken(const ModelConfig& cfg) const {
  return StoredElementsPerToken(cfg) * cfg.state_dtype_bytes;
}

std::string PartitionScheme::ToString() const {
  char buf[128];
  const char* tag = complement == ComplementMethod::kKvOffload   ? "KV"
                    : complement == ComplementMethod::kRecompute ? "RE"
                                                                 : "-";
  std::snprintf(buf, sizeof(buf), "%lld H + %lld %s (pred %.2fms, bubble %.2fms)",
                static_cast<long long>(layers_hidden), static_cast<long long>(layers_other),
                tag, predicted_time * 1e3, predicted_bubble * 1e3);
  return buf;
}

namespace {

// Makespan and bubble of a layer-wise schedule under steady-state pipelining.
void EvaluateLayerWise(const LayerProfile& p, PartitionScheme& s) {
  double compute = 0, io = 0;
  switch (s.complement) {
    case ComplementMethod::kKvOffload:
    case ComplementMethod::kNone:
      compute = p.c_hidden * static_cast<double>(s.layers_hidden);
      io = p.io_hidden * static_cast<double>(s.layers_hidden) +
           p.io_kv * static_cast<double>(s.layers_other);
      break;
    case ComplementMethod::kRecompute:
      compute = p.c_token * static_cast<double>(s.layers_other) +
                p.c_hidden * static_cast<double>(s.layers_hidden);
      io = p.io_hidden * static_cast<double>(s.layers_hidden);
      break;
  }
  s.predicted_time = std::max(compute, io);
  s.predicted_bubble = std::abs(compute - io);
}

}  // namespace

PartitionScheme SolveLayerWise(const LayerProfile& p, int64_t num_layers) {
  CHECK_GT(num_layers, 0);
  // Clamp in double BEFORE the integer cast: a near-cancelling denominator can push
  // the fractional crossing far past INT64_MAX, where the bare cast is UB.
  const auto clamp_layers = [num_layers](double lh) {
    return static_cast<int64_t>(
        std::clamp(lh, 0.0, static_cast<double>(num_layers)));
  };
  PartitionScheme s;
  if (p.c_hidden > p.io_hidden) {
    // Compute-bound: transmission has slack — fill it with KV-offloaded layers.
    const double denom = p.io_kv + p.c_hidden - p.io_hidden;
    s.layers_hidden =
        clamp_layers(std::ceil(static_cast<double>(num_layers) * p.io_kv / denom));
    s.layers_other = num_layers - s.layers_hidden;
    s.complement =
        s.layers_other == 0 ? ComplementMethod::kNone : ComplementMethod::kKvOffload;
  } else {
    // IO-bound: compute has slack — fill it with token-recomputed layers.
    const double denom = p.c_token + p.io_hidden - p.c_hidden;
    s.layers_hidden =
        clamp_layers(std::ceil(static_cast<double>(num_layers) * p.c_token / denom));
    s.layers_other = num_layers - s.layers_hidden;
    s.complement =
        s.layers_other == 0 ? ComplementMethod::kNone : ComplementMethod::kRecompute;
  }
  EvaluateLayerWise(p, s);

  // The closed form above is the paper's pick: ceil the fractional crossing within
  // the regime's own complement family. Integer rounding can leave that one layer off
  // the true optimum (the floor side may finish earlier), and the regime never looks
  // at the other family at all. Both streams are linear in L_H, so for each family
  // the exhaustive optimum over integer splits can only sit at floor/ceil of that
  // family's compute/IO crossing or at an endpoint (a pure plan) — scan those few
  // candidates and adopt any *strictly* faster schedule. Ties keep the paper's ceil
  // choice, so the Table 3 schedules are unchanged.
  auto consider = [&](int64_t lh, ComplementMethod m) {
    PartitionScheme cand;
    cand.layers_hidden = lh;
    cand.layers_other = num_layers - lh;
    cand.complement = cand.layers_other == 0 ? ComplementMethod::kNone : m;
    EvaluateLayerWise(p, cand);
    if (cand.predicted_time < s.predicted_time) {
      s = cand;
    }
  };
  auto consider_crossing = [&](double crossing_num, double crossing_den,
                               ComplementMethod m) {
    consider(0, m);
    consider(num_layers, m);
    if (crossing_den > 0) {
      const double lh =
          std::clamp(crossing_num / crossing_den, 0.0, static_cast<double>(num_layers));
      consider(clamp_layers(std::floor(lh)), m);
      consider(clamp_layers(std::ceil(lh)), m);
    }
  };
  const double n = static_cast<double>(num_layers);
  // KV family: C_H*L_H crosses N*IO_KV + L_H*(IO_H - IO_KV).
  consider_crossing(n * p.io_kv, p.io_kv + p.c_hidden - p.io_hidden,
                    ComplementMethod::kKvOffload);
  // Recompute family: IO_H*L_H crosses N*C_T + L_H*(C_H - C_T).
  consider_crossing(n * p.c_token, p.c_token + p.io_hidden - p.c_hidden,
                    ComplementMethod::kRecompute);
  return s;
}

TokenPartition SolveTokenWise(const LayerProfile& p, int64_t history_tokens,
                              bool round_to_tile) {
  CHECK_GT(history_tokens, 0);
  CHECK_EQ(p.history_tokens, history_tokens);
  const double n = static_cast<double>(history_tokens);
  // Per-token steady-state rates (the linear model the naive partitioner assumes; the
  // very point of Fig 13 is that real GEMM time is NOT linear in the token count).
  const double io_h = p.io_hidden / n;
  const double io_kv = p.io_kv / n;
  const double c_h = p.c_hidden / n;
  const double c_t = p.c_token / n;

  TokenPartition t;
  double th;
  if (c_h > io_h) {
    th = n * io_kv / (io_kv + c_h - io_h);
  } else {
    th = n * c_t / (c_t + io_h - c_h);
  }
  th = std::clamp(th, 0.0, n);
  t.tokens_hidden = static_cast<int64_t>(std::llround(th));
  if (round_to_tile) {
    const int64_t tile = kRoundUpGranularity;
    int64_t rounded = (t.tokens_hidden + tile / 2) / tile * tile;
    t.tokens_hidden = std::clamp(rounded, int64_t{0}, history_tokens);
  }
  t.tokens_other = history_tokens - t.tokens_hidden;
  const double h = static_cast<double>(t.tokens_hidden);
  const double o = static_cast<double>(t.tokens_other);
  const double compute = c_h > io_h ? c_h * h : c_h * h + c_t * o;
  const double io = c_h > io_h ? io_h * h + io_kv * o : io_h * h;
  t.predicted_time = std::max(compute, io);
  return t;
}

NaiveHybridScheme SolveNaiveHybrid(const LayerProfile& p, int64_t num_layers) {
  CHECK_GT(num_layers, 0);
  NaiveHybridScheme s;
  // Balance recompute compute-time against KV transmission: C_T*L_RE == IO_KV*L_KV.
  const double denom = p.c_token + p.io_kv;
  const double lkv = std::ceil(static_cast<double>(num_layers) * p.c_token / denom);
  s.layers_kv = std::clamp(static_cast<int64_t>(lkv), int64_t{0}, num_layers);
  s.layers_recompute = num_layers - s.layers_kv;
  s.predicted_time = std::max(p.io_kv * static_cast<double>(s.layers_kv),
                              p.c_token * static_cast<double>(s.layers_recompute));
  return s;
}

}  // namespace hcache
