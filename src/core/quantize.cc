#include "src/core/quantize.h"

#include <cmath>

#include "src/common/logging.h"

namespace hcache {

QuantizedRows QuantizeRows(const Tensor& t) {
  CHECK_EQ(t.rank(), 2);
  QuantizedRows q;
  q.rows = t.dim(0);
  q.cols = t.dim(1);
  q.values.resize(static_cast<size_t>(q.rows * q.cols));
  q.scales.resize(static_cast<size_t>(q.rows));
  for (int64_t r = 0; r < q.rows; ++r) {
    const float* row = t.row(r);
    float max_abs = 0.0f;
    for (int64_t c = 0; c < q.cols; ++c) {
      max_abs = std::max(max_abs, std::fabs(row[c]));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    q.scales[static_cast<size_t>(r)] = scale;
    const float inv = 1.0f / scale;
    int8_t* out = q.values.data() + r * q.cols;
    for (int64_t c = 0; c < q.cols; ++c) {
      const float v = std::round(row[c] * inv);
      out[c] = static_cast<int8_t>(std::max(-127.0f, std::min(127.0f, v)));
    }
  }
  return q;
}

Tensor DequantizeRows(const QuantizedRows& q) {
  Tensor t({q.rows, q.cols});
  for (int64_t r = 0; r < q.rows; ++r) {
    const float scale = q.scales[static_cast<size_t>(r)];
    const int8_t* in = q.values.data() + r * q.cols;
    float* out = t.row(r);
    for (int64_t c = 0; c < q.cols; ++c) {
      out[c] = static_cast<float>(in[c]) * scale;
    }
  }
  return t;
}

float RowErrorBound(const QuantizedRows& q, int64_t r) {
  CHECK_GE(r, 0);
  CHECK_LT(r, q.rows);
  return q.scales[static_cast<size_t>(r)] * 0.5f;
}

double CompressionVsFp16(const QuantizedRows& q) {
  const double fp16_bytes = 2.0 * static_cast<double>(q.rows) * static_cast<double>(q.cols);
  return fp16_bytes / static_cast<double>(q.byte_size());
}

}  // namespace hcache
