#include "src/core/quantize.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/storage/codec.h"

namespace hcache {

QuantizedRows QuantizeRows(const Tensor& t) {
  CHECK_EQ(t.rank(), 2);
  QuantizedRows q;
  q.rows = t.dim(0);
  q.cols = t.dim(1);
  q.values.resize(static_cast<size_t>(q.rows * q.cols));
  q.scales.resize(static_cast<size_t>(q.rows));
  // One kernel, two consumers: the storage plane's kInt8 chunk codec and this
  // standalone API quantize identically, so RowErrorBound holds for stored chunks too.
  for (int64_t r = 0; r < q.rows; ++r) {
    Int8EncodeRow(t.row(r), q.cols, &q.scales[static_cast<size_t>(r)],
                  q.values.data() + r * q.cols);
  }
  return q;
}

Tensor DequantizeRows(const QuantizedRows& q) {
  Tensor t({q.rows, q.cols});
  for (int64_t r = 0; r < q.rows; ++r) {
    Int8DecodeRow(q.values.data() + r * q.cols, q.scales[static_cast<size_t>(r)], q.cols,
                  t.row(r));
  }
  return t;
}

float RowErrorBound(const QuantizedRows& q, int64_t r) {
  CHECK_GE(r, 0);
  CHECK_LT(r, q.rows);
  return q.scales[static_cast<size_t>(r)] * 0.5f;
}

double CompressionVsFp16(const QuantizedRows& q) {
  const double fp16_bytes = 2.0 * static_cast<double>(q.rows) * static_cast<double>(q.cols);
  return fp16_bytes / static_cast<double>(q.byte_size());
}

}  // namespace hcache
