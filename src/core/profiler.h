// Offline hardware profiling (paper §4.1.2).
//
// The bubble-free scheduler needs four per-layer times for a given (platform, model,
// history length): hidden-state transmission IO_H, KV transmission IO_KV, hidden->KV
// recompute C_H, and full token recompute C_Token. The paper measures these on the
// target machine; we derive them from the calibrated hardware models, including the
// multi-GPU scheme of §5 (tensor parallelism: each GPU reads a disjoint token shard of
// the hidden states and an all-gather over NVLink rebuilds the full tensor; KV shards
// are per-head and need no gather).
#ifndef HCACHE_SRC_CORE_PROFILER_H_
#define HCACHE_SRC_CORE_PROFILER_H_

#include <cstdint>
#include <string>

#include "src/model/config.h"
#include "src/sim/hardware.h"
#include "src/storage/layout.h"

namespace hcache {

struct LayerProfile {
  double io_hidden = 0;   // transmit one layer's hidden states (n tokens), seconds
  double io_kv = 0;       // transmit one layer's KV cache, seconds
  double c_hidden = 0;    // recompute KV from hidden states for one layer, seconds
  double c_token = 0;     // full prefill compute for one layer, seconds
  int64_t history_tokens = 0;

  std::string ToString() const;
};

// Ring all-gather completion time: every GPU ends with `total_bytes` after contributing
// a 1/num_gpus shard over links of `link_bw` per direction.
double AllGatherTime(double total_bytes, int num_gpus, double link_bw);

// Profiles one transformer layer for a history of `n` tokens on `platform`.
// `layout`/`chunk_tokens`/`codec` select the on-storage format (they set the IO
// sizes; `codec` scales hidden-state transmission — kFp16 is the paper's transport).
LayerProfile ProfileLayer(const Platform& platform, const ModelConfig& cfg, int64_t n,
                          StorageLayout layout = StorageLayout::kLayerChunked,
                          int64_t chunk_tokens = kDefaultChunkTokens,
                          ChunkCodec codec = ChunkCodec::kFp16);

// The §6.1.3 auxiliary number: storage bandwidth (bytes/s) at which hidden-state
// transmission exactly matches hidden->KV recompute for this model on this GPU —
// "approximately 24GB/s, 21GB/s, and 37GB/s ... for the 7B, 13B, and 30B models".
double BalancedBandwidth(const Platform& platform, const ModelConfig& cfg, int64_t n);

}  // namespace hcache

#endif  // HCACHE_SRC_CORE_PROFILER_H_
