// Hidden-state quantization (extension; paper §7).
//
// The paper notes that CacheGen-style quantization "can be applied in HCache to reduce
// the size of hidden states". This module implements symmetric per-row INT8
// quantization of hidden-state rows: each token's row is scaled by max|x|/127 and
// rounded. That halves hidden-state IO again (FP16 -> INT8), at the cost of a bounded,
// non-zero restoration error — unlike base HCache, quantized restoration is lossy, so
// it is opt-in and benchmarked separately (bench_ext_quantization).
//
// Error bound: |dequant(quant(x)) - x| <= scale/2 = max|row|/254 per element.
#ifndef HCACHE_SRC_CORE_QUANTIZE_H_
#define HCACHE_SRC_CORE_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace hcache {

struct QuantizedRows {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int8_t> values;  // rows * cols
  std::vector<float> scales;   // one per row

  // Stored size (values + scales), the quantity the IO model charges.
  int64_t byte_size() const {
    return static_cast<int64_t>(values.size()) +
           static_cast<int64_t>(scales.size() * sizeof(float));
  }
};

// Quantizes a rank-2 tensor row by row.
QuantizedRows QuantizeRows(const Tensor& t);

// Reconstructs the FP32 tensor.
Tensor DequantizeRows(const QuantizedRows& q);

// Worst-case absolute reconstruction error for row `r` (scale/2).
float RowErrorBound(const QuantizedRows& q, int64_t r);

// Compression ratio versus FP16 storage of the same tensor.
double CompressionVsFp16(const QuantizedRows& q);

}  // namespace hcache

#endif  // HCACHE_SRC_CORE_QUANTIZE_H_
