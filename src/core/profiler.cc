#include "src/core/profiler.h"

#include <cstdio>

#include "src/common/logging.h"
#include "src/model/cost_model.h"
#include "src/sim/gpu_timing.h"
#include "src/storage/io_timing.h"

namespace hcache {

std::string LayerProfile::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld IO_H=%.0fus IO_KV=%.0fus C_H=%.0fus C_T=%.0fus",
                static_cast<long long>(history_tokens), io_hidden * 1e6, io_kv * 1e6,
                c_hidden * 1e6, c_token * 1e6);
  return buf;
}

double AllGatherTime(double total_bytes, int num_gpus, double link_bw) {
  if (num_gpus <= 1) {
    return 0.0;
  }
  // Ring all-gather moves (g-1)/g of the payload through each link.
  return total_bytes * (static_cast<double>(num_gpus - 1) / num_gpus) / link_bw;
}

LayerProfile ProfileLayer(const Platform& platform, const ModelConfig& cfg, int64_t n,
                          StorageLayout layout, int64_t chunk_tokens, ChunkCodec codec) {
  CHECK_GT(n, 0);
  LayerProfile p;
  p.history_tokens = n;
  const int g = platform.num_gpus;
  GpuTimingModel gpu(platform.gpu, g);
  StorageIoModel io(platform);

  // Steady-state transmission terms exclude the one-time pipeline-fill latency; the
  // restorer adds it once per restoration.
  const int64_t shard_tokens = (n + g - 1) / g;

  // Hidden states: disjoint token shards read in parallel (at the codec's encoded
  // size), then all-gather so every TP rank holds the full activation (it needs all
  // tokens to project its KV heads). The gather moves the dequantized FP16 activation
  // over NVLink — the GPU-side working dtype — regardless of the storage codec.
  const IoPattern hidden_shard =
      RestoreLayerPattern(layout, cfg, shard_tokens, chunk_tokens, codec);
  const double shard_read =
      static_cast<double>(hidden_shard.total_bytes()) /
      io.EffectiveReadBw(static_cast<double>(hidden_shard.io_size));
  p.io_hidden = shard_read + AllGatherTime(HiddenIoBytesPerLayer(cfg, static_cast<double>(n)),
                                           g, platform.nvlink_bw);

  // KV cache: each rank owns its heads' KV shard outright — parallel reads, no gather.
  // KV offload ships FP16 KV (2*kv_dim rows), independent of the hidden-state codec.
  const IoPattern kv_shard = KvRestoreLayerPattern(layout, cfg, shard_tokens, chunk_tokens);
  p.io_kv = static_cast<double>(kv_shard.total_bytes()) /
            io.EffectiveReadBw(static_cast<double>(kv_shard.io_size));

  p.c_hidden = gpu.HiddenToKvTime(cfg, n);
  p.c_token = gpu.TokenRecomputeTimePerLayer(cfg, n);
  return p;
}

double BalancedBandwidth(const Platform& platform, const ModelConfig& cfg, int64_t n) {
  GpuTimingModel gpu(platform.gpu, platform.num_gpus);
  const double c_h = gpu.HiddenToKvTime(cfg, n);
  CHECK_GT(c_h, 0.0);
  return HiddenIoBytesPerLayer(cfg, static_cast<double>(n)) / c_h;
}

}  // namespace hcache
