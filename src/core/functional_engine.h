// Functional HCache engine: the end-to-end save → evict → restore path executed with
// real computation and real storage (any StorageBackend: file, DRAM, or tiered).
//
// This is where the paper's pieces compose: the transformer forward pass captures
// hidden states through the two-stage saver into the chunk store; eviction releases the
// paged KV blocks; restoration rebuilds the KV cache according to a partition scheme —
// hidden-state layers via the K/V projection (plus RoPE at original positions), KV
// -offloaded layers from stored KV chunks, recomputed layers by re-running the early
// transformer layers from the raw tokens. Every path lands bit-identical KV, which the
// integration tests assert.
#ifndef HCACHE_SRC_CORE_FUNCTIONAL_ENGINE_H_
#define HCACHE_SRC_CORE_FUNCTIONAL_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/partition.h"
#include "src/model/kv_cache.h"
#include "src/model/transformer.h"
#include "src/storage/hidden_saver.h"
#include "src/storage/storage_backend.h"

namespace hcache {

class FunctionalHCache {
 public:
  // `model`, `store`, and `flush_pool` must outlive the engine. `flush_pool` may be
  // null (synchronous chunk flushes). A single store holds both hidden-state and KV
  // chunks; KV chunks live in a disjoint layer-key namespace. `codec` selects the
  // stored precision of both chunk kinds: kFp32 (default) restores bit-exactly;
  // kFp16/kInt8 halve/quarter stored bytes with a bounded, deterministic error
  // (identical restored floats on every backend).
  FunctionalHCache(Transformer* model, StorageBackend* store, ThreadPool* flush_pool,
                   int64_t chunk_tokens = kDefaultChunkTokens,
                   ChunkCodec codec = ChunkCodec::kFp32);

  // Starts (or resumes) capturing hidden states for a context. The returned sink is
  // owned by the engine and stays valid until DropContext.
  HiddenStateSink* BeginCapture(int64_t context_id);

  // Flushes partial chunks for the context (call when its generation round ends).
  void SealContext(int64_t context_id);

  // Persists the KV cache of `layers` (paper: the last L_O layers under a KV-offload
  // complement) from the sequence to the store. Call before Evict.
  void SaveKvLayers(int64_t context_id, const PagedKvSequence& seq,
                    const std::vector<int64_t>& layers);

  // Rebuilds `seq`'s KV cache for its recorded history according to `scheme`.
  // `history_tokens` must be the context's original token ids when the scheme contains
  // recomputed layers (complement == kRecompute); it may be empty otherwise.
  // Returns false — leaving the sequence evicted and its history length intact — when
  // the KV pool cannot hold the restored state or when stored state is missing/corrupt
  // (e.g. a device was lost); the caller falls back to full recomputation.
  bool RestoreContext(int64_t context_id, const PartitionScheme& scheme,
                      const std::vector<int32_t>& history_tokens, PagedKvSequence* seq);

  // True when everything `scheme` needs to restore `n` tokens of this context is
  // durably stored (hidden chunks for hidden layers, KV chunks for offloaded layers).
  bool CanRestore(int64_t context_id, const PartitionScheme& scheme, int64_t n) const;

  // Deletes all stored state for the context.
  void DropContext(int64_t context_id);

  // Reads one layer's hidden states back (test/inspection hook).
  Tensor ReadHidden(int64_t context_id, int64_t layer, int64_t n) const;

  int64_t chunk_tokens() const { return chunk_tokens_; }
  ChunkCodec codec() const { return codec_; }

 private:
  // KV chunks are stored under layer' = kKvLayerBase + layer so they never collide
  // with hidden-state chunks of the same context.
  static constexpr int64_t kKvLayerBase = 1'000'000;

  void SaveKvLayer(int64_t context_id, const PagedKvSequence& seq, int64_t layer);
  // False (with a log) when any covering KV chunk is missing, short, or detected
  // corrupt — RestoreContext unwinds to "still evicted" and reports failure.
  bool LoadKvLayer(int64_t context_id, int64_t layer, int64_t n, Tensor* k, Tensor* v) const;

  Transformer* model_;
  StorageBackend* store_;
  ThreadPool* flush_pool_;
  int64_t chunk_tokens_;
  ChunkCodec codec_;
  std::map<int64_t, std::unique_ptr<HiddenStateWriter>> writers_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_CORE_FUNCTIONAL_ENGINE_H_
