// Extension: prefix-sharing-aware hidden-state storage.
//
// Deployments put the same system prompt or retrieved document in front of many
// contexts. Hidden states of those prefix tokens are identical across contexts (causal
// attention: a token's activations depend only on tokens before it), so they can be
// stored ONCE and referenced. This module interns prefixes in the chunk store with
// reference counts and lets contexts capture/restore only their suffix:
//
//   * `SharedPrefixManager::InternPrefix(tokens)` runs the prefix through the model
//     once, persists its hidden states under a dedicated prefix context id, and dedups
//     repeat interns of the SAME token stream (a second Intern is free). Equality is
//     decided by comparing the stored token vectors, never by hash alone: a token-hash
//     collision between two distinct prompts allocates a fresh prefix instead of
//     silently restoring the wrong prefix's hidden states into a user's KV (the
//     length-only guard this module used to have was a real correctness hole).
//   * `BeginSuffixCapture(ctx, prefix_id)` returns a sink that skips the prefix
//     positions and stores only suffix rows under `ctx` — and takes a REFERENCE on
//     the prefix, so a `ReleasePrefix` by the original interner can never delete
//     prefix chunks out from under a live context. `DropContext` releases it.
//   * `RestoreContext(ctx, prefix_id, seq)` reassembles full-layer hidden states
//     (prefix rows from the shared copy + suffix rows) and rebuilds the KV cache —
//     bit-identical to a never-evicted sequence when the codec is lossless.
//
// Token-level interning exists to skip the model forward pass (the expensive part of
// a repeat intern); BYTE-level sharing is the storage plane's job. Point `store` at a
// DedupBackend and identical chunks dedup fleet-wide underneath this manager — across
// prefixes that share a chunk-aligned start, across unrelated contexts, across
// serving replicas — with refcounts owned by the store ("write and let the store
// dedup").
//
// Related systems: PromptCache / SGLang share *KV* on the GPU hit path; this shares
// *hidden states* on HCache's miss path, halving their storage as well.
#ifndef HCACHE_SRC_CORE_SHARED_PREFIX_H_
#define HCACHE_SRC_CORE_SHARED_PREFIX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/model/kv_cache.h"
#include "src/model/transformer.h"
#include "src/storage/storage_backend.h"
#include "src/storage/hidden_saver.h"

namespace hcache {

class SharedPrefixManager {
 public:
  struct PrefixInfo {
    int64_t prefix_id = 0;
    int64_t length = 0;
    // Interner references + one per context that captured against this prefix.
    int64_t ref_count = 0;
    // Encoded bytes the prefix's chunks occupy in the store (headers included) —
    // what a dedup hit actually avoids writing. Codec-accurate: an fp16 store saves
    // half the bytes an fp32 one would, and bytes_deduped() reflects that.
    int64_t encoded_bytes = 0;
    // The interned token stream; the collision guard compares against it in full.
    std::vector<int32_t> tokens;
    uint64_t token_hash = 0;
  };

  // `model` and `store` must outlive the manager. Prefix ids live in their own
  // context-id namespace (>= kPrefixIdBase) inside `store`. `codec` selects the
  // stored precision of prefix and suffix chunks (kFp32 restores bit-exactly; kFp16
  // halves the bytes at <= 0.5 ulp error, matching the serving plane's default).
  SharedPrefixManager(Transformer* model, StorageBackend* store,
                      int64_t chunk_tokens = kDefaultChunkTokens,
                      ChunkCodec codec = ChunkCodec::kFp32);

  // Interns a prefix: on first sight, runs the model over it (scratch KV from `pool`)
  // and persists its hidden states; later calls with identical tokens only bump the
  // refcount. Two distinct token streams NEVER share a prefix id, even under a
  // token-hash collision. Returns the prefix id.
  int64_t InternPrefix(const std::vector<int32_t>& tokens, KvBlockPool* pool);

  // Drops one reference; the prefix's chunks are deleted at zero. Live suffix
  // captures hold their own reference, so releasing the interner's does not strand
  // them.
  void ReleasePrefix(int64_t prefix_id);

  // Sink that captures only positions >= prefix length, stored under `context_id`.
  // Valid until DropContext/destruction. Feed it the full forward pass of
  // prefix+suffix (or of the suffix alone after restoration). Takes a prefix
  // reference on the context's first capture; DropContext releases it.
  HiddenStateSink* BeginSuffixCapture(int64_t context_id, int64_t prefix_id);

  // Flushes a context's partial suffix chunks.
  void SealContext(int64_t context_id);

  // Rebuilds `seq`'s KV (pure hidden-state scheme) from shared prefix + own suffix.
  // `seq` must be evicted and carry the full history length (prefix + suffix).
  bool RestoreContext(int64_t context_id, int64_t prefix_id, PagedKvSequence* seq);

  // Removes a context's suffix state and releases its prefix reference (the shared
  // prefix itself survives while other referents remain).
  void DropContext(int64_t context_id);

  const PrefixInfo* GetPrefix(int64_t prefix_id) const;
  int64_t num_prefixes() const { return static_cast<int64_t>(prefixes_.size()); }

  // Encoded bytes NOT written thanks to prefix interning (repeat-intern hits),
  // accounted at the active codec's stored size — not at sizeof(float), which
  // overstated fp16/int8 deployments 2-4x.
  int64_t bytes_deduped() const { return bytes_deduped_; }

  // Test hook: overrides the token-stream hash so two distinct prefixes can be
  // forced into one bucket and the full-compare collision guard exercised.
  // nullptr restores the production hash.
  void SetTokenHashForTest(std::function<uint64_t(const std::vector<int32_t>&)> fn) {
    token_hash_for_test_ = std::move(fn);
  }

 private:
  static constexpr int64_t kPrefixIdBase = 2'000'000'000;

  // Skips the first `offset` positions and rebases the rest onto an inner writer.
  class SuffixSink : public HiddenStateSink {
   public:
    SuffixSink(StorageBackend* store, const ModelConfig& cfg, int64_t context_id,
               int64_t offset, int64_t chunk_tokens, ChunkCodec codec);
    void OnLayerInput(int64_t layer, const Tensor& hidden, const int32_t* positions,
                      int64_t n) override;
    void Seal() { writer_.Seal(); }

   private:
    HiddenStateWriter writer_;
    int64_t offset_;
    int64_t hidden_dim_;
  };

  uint64_t TokenHash(const std::vector<int32_t>& tokens) const;

  Transformer* model_;
  StorageBackend* store_;
  int64_t chunk_tokens_;
  ChunkCodec codec_;
  int64_t next_prefix_id_ = kPrefixIdBase;
  // Hash BUCKETS, not identities: multiple prefixes may share one bucket (forced by
  // the test hook, or a real 64-bit collision); InternPrefix compares token vectors.
  std::multimap<uint64_t, int64_t> hash_to_prefix_;
  std::map<int64_t, PrefixInfo> prefixes_;
  std::map<int64_t, std::unique_ptr<SuffixSink>> sinks_;        // context -> sink
  std::map<int64_t, int64_t> context_prefix_;                   // context -> prefix id
  int64_t bytes_deduped_ = 0;
  std::function<uint64_t(const std::vector<int32_t>&)> token_hash_for_test_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_CORE_SHARED_PREFIX_H_
