// Extension: prefix-sharing-aware hidden-state storage.
//
// Deployments put the same system prompt or retrieved document in front of many
// contexts. Hidden states of those prefix tokens are identical across contexts (causal
// attention: a token's activations depend only on tokens before it), so they can be
// stored ONCE and referenced. This module interns prefixes in the chunk store with
// reference counts and lets contexts capture/restore only their suffix:
//
//   * `SharedPrefixManager::InternPrefix(tokens)` runs the prefix through the model
//     once, persists its hidden states under a dedicated prefix context id, and dedups
//     by content hash (a second Intern of the same tokens is free).
//   * `BeginSuffixCapture(ctx, prefix_id)` returns a sink that skips the prefix
//     positions and stores only suffix rows under `ctx`.
//   * `RestoreContext(ctx, prefix_id, seq)` reassembles full-layer hidden states
//     (prefix rows from the shared copy + suffix rows) and rebuilds the KV cache —
//     bit-identical to a never-evicted sequence.
//
// Related systems: PromptCache / SGLang share *KV* on the GPU hit path; this shares
// *hidden states* on HCache's miss path, halving their storage as well.
#ifndef HCACHE_SRC_CORE_SHARED_PREFIX_H_
#define HCACHE_SRC_CORE_SHARED_PREFIX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/model/kv_cache.h"
#include "src/model/transformer.h"
#include "src/storage/storage_backend.h"
#include "src/storage/hidden_saver.h"

namespace hcache {

class SharedPrefixManager {
 public:
  struct PrefixInfo {
    int64_t prefix_id = 0;
    int64_t length = 0;
    int64_t ref_count = 0;
  };

  // `model` and `store` must outlive the manager. Prefix ids live in their own
  // context-id namespace (>= kPrefixIdBase) inside `store`.
  SharedPrefixManager(Transformer* model, StorageBackend* store,
                      int64_t chunk_tokens = kDefaultChunkTokens);

  // Interns a prefix: on first sight, runs the model over it (scratch KV from `pool`)
  // and persists its hidden states; later calls with identical tokens only bump the
  // refcount. Returns the prefix id.
  int64_t InternPrefix(const std::vector<int32_t>& tokens, KvBlockPool* pool);

  // Drops one reference; the prefix's chunks are deleted at zero.
  void ReleasePrefix(int64_t prefix_id);

  // Sink that captures only positions >= prefix length, stored under `context_id`.
  // Valid until DropContext/destruction. Feed it the full forward pass of
  // prefix+suffix (or of the suffix alone after restoration).
  HiddenStateSink* BeginSuffixCapture(int64_t context_id, int64_t prefix_id);

  // Flushes a context's partial suffix chunks.
  void SealContext(int64_t context_id);

  // Rebuilds `seq`'s KV (pure hidden-state scheme) from shared prefix + own suffix.
  // `seq` must be evicted and carry the full history length (prefix + suffix).
  bool RestoreContext(int64_t context_id, int64_t prefix_id, PagedKvSequence* seq);

  // Removes a context's suffix state (the shared prefix is unaffected).
  void DropContext(int64_t context_id);

  const PrefixInfo* GetPrefix(int64_t prefix_id) const;
  int64_t num_prefixes() const { return static_cast<int64_t>(prefixes_.size()); }

  // Bytes NOT written thanks to deduplication (suffix-sharing hits).
  int64_t bytes_deduped() const { return bytes_deduped_; }

 private:
  static constexpr int64_t kPrefixIdBase = 2'000'000'000;

  // Skips the first `offset` positions and rebases the rest onto an inner writer.
  class SuffixSink : public HiddenStateSink {
   public:
    SuffixSink(StorageBackend* store, const ModelConfig& cfg, int64_t context_id,
               int64_t offset, int64_t chunk_tokens);
    void OnLayerInput(int64_t layer, const Tensor& hidden, const int32_t* positions,
                      int64_t n) override;
    void Seal() { writer_.Seal(); }

   private:
    HiddenStateWriter writer_;
    int64_t offset_;
    int64_t hidden_dim_;
  };

  Transformer* model_;
  StorageBackend* store_;
  int64_t chunk_tokens_;
  int64_t next_prefix_id_ = kPrefixIdBase;
  std::map<uint64_t, int64_t> hash_to_prefix_;  // content hash -> prefix id
  std::map<int64_t, PrefixInfo> prefixes_;
  std::map<int64_t, std::unique_ptr<SuffixSink>> sinks_;        // context -> sink
  std::map<int64_t, int64_t> context_prefix_;                   // context -> prefix id
  int64_t bytes_deduped_ = 0;
};

}  // namespace hcache

#endif  // HCACHE_SRC_CORE_SHARED_PREFIX_H_
