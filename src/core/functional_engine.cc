#include "src/core/functional_engine.h"

#include <atomic>
#include <cstring>
#include <future>
#include <numeric>
#include <utility>

#include "src/common/logging.h"
#include "src/storage/codec.h"

namespace hcache {

FunctionalHCache::FunctionalHCache(Transformer* model, StorageBackend* store,
                                   ThreadPool* flush_pool, int64_t chunk_tokens,
                                   ChunkCodec codec)
    : model_(model),
      store_(store),
      flush_pool_(flush_pool),
      chunk_tokens_(chunk_tokens),
      codec_(codec) {
  CHECK(model != nullptr);
  CHECK(store != nullptr);
  // KV chunks carry K and V interleaved per token: rows are 2 * kv_dim wide.
  const int64_t kv_chunk_bytes =
      EncodedChunkBytes(codec_, chunk_tokens_, 2 * model_->config().kv_dim());
  CHECK_LE(kv_chunk_bytes, store_->chunk_bytes()) << "chunk store too small for KV chunks";
}

HiddenStateSink* FunctionalHCache::BeginCapture(int64_t context_id) {
  auto& writer = writers_[context_id];
  if (writer == nullptr) {
    writer = std::make_unique<HiddenStateWriter>(store_, flush_pool_, model_->config(),
                                                 context_id, chunk_tokens_, codec_);
  }
  return writer.get();
}

void FunctionalHCache::SealContext(int64_t context_id) {
  const auto it = writers_.find(context_id);
  CHECK(it != writers_.end()) << "unknown context " << context_id;
  it->second->Seal();
}

void FunctionalHCache::SaveKvLayer(int64_t context_id, const PagedKvSequence& seq,
                                   int64_t layer) {
  const ModelConfig& cfg = model_->config();
  const int64_t n = seq.num_tokens();
  const int64_t kv_dim = cfg.kv_dim();
  const int64_t row_floats = 2 * kv_dim;
  const int64_t row_stride = CodecRowBytes(codec_, row_floats);
  const int64_t num_chunks = (n + chunk_tokens_ - 1) / chunk_tokens_;
  std::vector<uint8_t> payload(
      static_cast<size_t>(EncodedChunkBytes(codec_, chunk_tokens_, row_floats)));
  std::vector<float> row_buf(static_cast<size_t>(row_floats));
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t first = c * chunk_tokens_;
    const int64_t count = std::min(chunk_tokens_, n - first);
    for (int64_t i = 0; i < count; ++i) {
      // Gather the token's K and V halves once, then encode straight into the chunk —
      // the interleaved [K | V] row is never staged as a second FP32 buffer.
      std::memcpy(row_buf.data(), seq.KeyRow(layer, first + i),
                  static_cast<size_t>(kv_dim) * sizeof(float));
      std::memcpy(row_buf.data() + kv_dim, seq.ValueRow(layer, first + i),
                  static_cast<size_t>(kv_dim) * sizeof(float));
      EncodeRowsInto(codec_, row_buf.data(), row_floats, 1, row_floats,
                     payload.data() + sizeof(ChunkHeader) + i * row_stride);
    }
    WriteChunkHeader(codec_, count, row_floats, payload.data());
    const ChunkKey key{context_id, kKvLayerBase + layer, c};
    CHECK(store_->WriteChunk(key, payload.data(),
                             static_cast<int64_t>(sizeof(ChunkHeader)) + count * row_stride));
  }
}

void FunctionalHCache::SaveKvLayers(int64_t context_id, const PagedKvSequence& seq,
                                    const std::vector<int64_t>& layers) {
  CHECK(seq.has_kv());
  for (int64_t layer : layers) {
    SaveKvLayer(context_id, seq, layer);
  }
}

bool FunctionalHCache::LoadKvLayer(int64_t context_id, int64_t layer, int64_t n, Tensor* k,
                                   Tensor* v) const {
  const ModelConfig& cfg = model_->config();
  const int64_t kv_dim = cfg.kv_dim();
  const int64_t row_floats = 2 * kv_dim;
  *k = Tensor({n, kv_dim});
  *v = Tensor({n, kv_dim});
  const int64_t num_chunks = (n + chunk_tokens_ - 1) / chunk_tokens_;
  const int64_t chunk_cap =
      EncodedChunkBytes(ChunkCodec::kFp32, chunk_tokens_, row_floats);
  std::vector<uint8_t> buf(static_cast<size_t>(num_chunks * chunk_cap));
  // One batched submission for the layer's chunks (see HiddenStateReader: the
  // backend overlaps the fetches instead of paying per-chunk round trips).
  std::vector<ChunkReadRequest> reqs(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    reqs[static_cast<size_t>(c)] =
        ChunkReadRequest{ChunkKey{context_id, kKvLayerBase + layer, c},
                         buf.data() + c * chunk_cap, chunk_cap, /*result=*/-1};
  }
  store_->ReadChunks(reqs);
  for (int64_t c = 0; c < num_chunks; ++c) {
    const uint8_t* chunk = buf.data() + c * chunk_cap;
    const int64_t got = reqs[static_cast<size_t>(c)].result;
    const int64_t first = c * chunk_tokens_;
    const int64_t count = std::min(chunk_tokens_, n - first);
    ChunkInfo info;
    if (got <= 0 || !InspectChunk(chunk, got, row_floats, &info) ||
        info.cols != row_floats || info.rows < count) {
      HCACHE_LOG_ERROR << "KV chunk "
                       << (got == kChunkCorrupt ? "corrupt" : "missing/short")
                       << ": ctx=" << context_id << " L=" << layer << " C=" << c;
      return false;
    }
    // Fused decode + de-interleave: each stored [K | V] row dequantizes directly into
    // the two destination tensors via column sub-ranges — no FP32 staging pass.
    DecodeChunkRange(chunk, got, info, 0, count, 0, kv_dim, k->row(first), kv_dim);
    DecodeChunkRange(chunk, got, info, 0, count, kv_dim, row_floats, v->row(first),
                     kv_dim);
  }
  return true;
}

bool FunctionalHCache::CanRestore(int64_t context_id, const PartitionScheme& scheme,
                                  int64_t n) const {
  const ModelConfig& cfg = model_->config();
  const HiddenStateReader reader(store_, cfg, chunk_tokens_);
  const int64_t first_hidden =
      scheme.complement == ComplementMethod::kRecompute ? scheme.layers_other : 0;
  for (int64_t layer = first_hidden; layer < first_hidden + scheme.layers_hidden; ++layer) {
    if (!reader.LayerComplete(context_id, layer, n, codec_)) {
      return false;
    }
  }
  if (scheme.complement == ComplementMethod::kKvOffload) {
    const int64_t kv_row_floats = 2 * cfg.kv_dim();
    const int64_t num_chunks = (n + chunk_tokens_ - 1) / chunk_tokens_;
    for (int64_t layer = scheme.layers_hidden; layer < cfg.num_layers; ++layer) {
      for (int64_t c = 0; c < num_chunks; ++c) {
        const int64_t first = c * chunk_tokens_;
        const int64_t want = std::min(chunk_tokens_, n - first);
        if (!ChunkSizeCoversRows(
                store_->ChunkSize(ChunkKey{context_id, kKvLayerBase + layer, c}), want,
                chunk_tokens_, kv_row_floats, codec_)) {
          return false;
        }
      }
    }
  }
  return true;
}

bool FunctionalHCache::RestoreContext(int64_t context_id, const PartitionScheme& scheme,
                                      const std::vector<int32_t>& history_tokens,
                                      PagedKvSequence* seq) {
  const ModelConfig& cfg = model_->config();
  const int64_t nl = cfg.num_layers;
  CHECK_EQ(scheme.layers_hidden + scheme.layers_other, nl);
  CHECK(!seq->has_kv()) << "restore target must be evicted";
  const int64_t n = seq->num_tokens();
  CHECK_GT(n, 0);

  // Fail before mutating the sequence if the pool cannot hold the restored state or
  // any required chunk is missing/short (device loss, partial save).
  const int64_t bt = seq->pool()->block_tokens();
  if ((n + bt - 1) / bt > seq->pool()->num_free()) {
    return false;
  }
  if (!CanRestore(context_id, scheme, n)) {
    return false;
  }

  int64_t first_hidden = 0;  // hidden-layer range [first_hidden, first_hidden + L_H)
  seq->ResetForRestore();
  CHECK(seq->EnsureCapacity(n));
  if (scheme.complement == ComplementMethod::kRecompute && scheme.layers_other > 0) {
    CHECK_EQ(static_cast<int64_t>(history_tokens.size()), n)
        << "recompute complement needs the original tokens";
    // Rebuild the first L_O layers (and their KV) from raw tokens.
    model_->ForwardPartial(history_tokens, seq, scheme.layers_other);
    first_hidden = scheme.layers_other;
  } else {
    seq->CommitTokens(n);
  }

  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  const HiddenStateReader reader(store_, cfg, chunk_tokens_);

  // Restoration is a two-stream pipeline, mirroring the paper's dedicated transmission
  // and computation streams: while the caller projects layer i's hidden states into
  // K/V (compute stream), the flush pool is already reading layer i+1's chunks from
  // the backend (transmission stream). Each step consumes data loaded one step ahead,
  // so file/tiered I/O overlaps the projection GEMMs instead of serializing with them.
  // KV-offloaded layers join the same pipeline: their chunk reads prefetch behind the
  // last projections. Without a flush pool the plan degrades to the serial loads the
  // engine always performed — the bytes and math are identical either way.
  struct LayerState {
    int64_t layer = 0;
    bool from_hidden = false;
    Tensor hidden;  // from_hidden: the layer's saved input activations
    Tensor k, v;    // !from_hidden: the layer's offloaded KV rows
  };
  std::vector<LayerState> plan;
  for (int64_t layer = first_hidden; layer < first_hidden + scheme.layers_hidden; ++layer) {
    plan.push_back({layer, /*from_hidden=*/true, {}, {}, {}});
  }
  if (scheme.complement == ComplementMethod::kKvOffload) {
    for (int64_t layer = scheme.layers_hidden; layer < nl; ++layer) {
      plan.push_back({layer, /*from_hidden=*/false, {}, {}, {}});
    }
  }

  // CanRestore vets sizes, not payloads: a chunk that passed the size check can still
  // fail its CRC (or parse) when actually read. Loads therefore report failure through
  // `load_failed` (they may run on a pool thread, where throwing or CHECKing would
  // take the process down) and the pipeline unwinds to "still evicted" below.
  std::atomic<bool> load_failed{false};
  auto load = [&](LayerState& entry) {
    if (entry.from_hidden) {
      Tensor hidden({n, cfg.hidden_dim});
      if (!reader.ReadLayerInto(context_id, entry.layer, n, hidden.data())) {
        load_failed.store(true, std::memory_order_release);
        return;
      }
      entry.hidden = std::move(hidden);
    } else {
      if (!LoadKvLayer(context_id, entry.layer, n, &entry.k, &entry.v)) {
        load_failed.store(true, std::memory_order_release);
      }
    }
  };
  auto submit_load = [&](LayerState& entry) {
    auto done = std::make_shared<std::promise<void>>();
    std::future<void> fut = done->get_future();
    flush_pool_->Submit([&entry, &load, done] {
      load(entry);
      done->set_value();
    });
    return fut;
  };

  std::future<void> next_loaded;
  if (flush_pool_ != nullptr && !plan.empty()) {
    next_loaded = submit_load(plan.front());
  }
  for (size_t idx = 0; idx < plan.size(); ++idx) {
    LayerState& entry = plan[idx];
    if (next_loaded.valid()) {
      next_loaded.get();  // wait for this layer's read...
      if (idx + 1 < plan.size() && !load_failed.load(std::memory_order_acquire)) {
        next_loaded = submit_load(plan[idx + 1]);  // ...and start the next one now
      } else {
        next_loaded = std::future<void>();
      }
    } else {
      load(entry);
    }
    if (load_failed.load(std::memory_order_acquire)) {
      break;
    }
    if (entry.from_hidden) {
      Tensor k, v;
      model_->RestoreLayerKv(entry.layer, entry.hidden, positions.data(), &k, &v);
      seq->WriteKv(entry.layer, 0, k, v);
      entry.hidden = Tensor();  // release the staged activations early
    } else {
      seq->WriteKv(entry.layer, 0, entry.k, entry.v);
    }
  }
  if (load_failed.load(std::memory_order_acquire)) {
    // The failure may have been set by the layer we just consumed while its
    // *successor's* prefetch was already submitted — wait that one out before
    // unwinding so no pool task still references this frame.
    if (next_loaded.valid()) {
      next_loaded.get();
    }
    // Leave the sequence exactly as a failed-precondition return does: evicted
    // (partially written KV released) with its history length intact, so the caller
    // can recompute from tokens.
    seq->Evict();
    HCACHE_LOG_ERROR << "restore aborted, sequence left evicted: ctx=" << context_id;
    return false;
  }
  return true;
}

void FunctionalHCache::DropContext(int64_t context_id) {
  writers_.erase(context_id);
  store_->DeleteContext(context_id);
}

Tensor FunctionalHCache::ReadHidden(int64_t context_id, int64_t layer, int64_t n) const {
  return HiddenStateReader(store_, model_->config(), chunk_tokens_)
      .ReadLayer(context_id, layer, n);
}

}  // namespace hcache
