// State-restoration executors (the systems half of the paper).
//
// Each method replays its restoration schedule on the discrete-event simulator using
// two serial resources per GPU — the compute stream and the transmission stream —
// exactly mirroring the paper's dedicated-CUDA-stream implementation (§5). The result
// records the makespan plus per-stream busy/bubble accounting, bytes moved, and FLOPs
// spent, which the benches turn into the paper's figures.
//
// Methods:
//   kRecompute   — DeepSpeed-MII baseline: full prefill from tokens (compute only).
//   kKvOffload   — AttentionStore baseline: stream the KV cache in (IO only).
//   kHCache      — hidden states + bubble-free complement (the full system).
//   kHCacheOnly  — hidden states without the bubble-free scheduler (ablation
//                  "HCache-O", Fig 12).
//   kNaiveHybrid — recompute + KV offload mixed, no hidden states (ablation, Fig 12).
//   kIdeal       — state already on GPU; restoration is free.
#ifndef HCACHE_SRC_CORE_RESTORER_H_
#define HCACHE_SRC_CORE_RESTORER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/partition.h"
#include "src/core/profiler.h"
#include "src/model/config.h"
#include "src/sim/hardware.h"
#include "src/storage/layout.h"

namespace hcache {

enum class RestoreMethod {
  kRecompute,
  kKvOffload,
  kHCache,
  kHCacheOnly,
  kNaiveHybrid,
  kIdeal,
};

const char* RestoreMethodName(RestoreMethod m);

struct RestoreResult {
  RestoreMethod method = RestoreMethod::kIdeal;
  int64_t history_tokens = 0;
  double total_time = 0;      // makespan, seconds
  double compute_busy = 0;    // compute-stream busy seconds
  double io_busy = 0;         // transmission-stream busy seconds
  double compute_bubble = 0;  // makespan - compute_busy
  double io_bubble = 0;       // makespan - io_busy
  double bytes_read = 0;         // from the storage backend (all GPUs)
  double hidden_bytes_read = 0;  // the hidden-state transport's share of bytes_read —
                                 // the stream the storage codec scales (KV-offload
                                 // layers always move FP16 KV)
  double flops = 0;              // restoration compute (all GPUs)
  PartitionScheme scheme;     // meaningful for kHCache / kHCacheOnly

  // Restoration speed (tokens/second) — the §6.2 sensitivity metric.
  double TokensPerSecond() const;
  std::string ToString() const;
};

class Restorer {
 public:
  // `codec` is the hidden-state storage encoding the transmission stream pays for;
  // the default kFp16 matches the paper's FP16 transport (KV offload always moves
  // FP16 KV, independent of the hidden codec).
  Restorer(const Platform& platform, const ModelConfig& cfg,
           StorageLayout layout = StorageLayout::kLayerChunked,
           int64_t chunk_tokens = kDefaultChunkTokens,
           ChunkCodec codec = ChunkCodec::kFp16);

  // Profiles and solves the bubble-free partition for this history length.
  LayerProfile Profile(int64_t history_tokens) const;
  PartitionScheme Schedule(int64_t history_tokens) const;

  // Executes `method` on the DES for a history of `history_tokens`.
  RestoreResult Restore(RestoreMethod method, int64_t history_tokens) const;

  // Fig 13 ablation: token-wise partitioned restoration (optionally tile-rounded).
  RestoreResult RestoreTokenWise(int64_t history_tokens, bool round_to_tile) const;

  // §5 pipeline parallelism: the model's layers are split into `num_stages` contiguous
  // slices, one per GPU; each GPU fetches the hidden states of its own layers and
  // projects them concurrently (layer restorations are independent). The platform's
  // GPUs/SSDs divide evenly across stages. Makespan = the slowest stage.
  RestoreResult RestorePipelineParallel(RestoreMethod method, int64_t history_tokens,
                                        int num_stages) const;

  const Platform& platform() const { return platform_; }
  const ModelConfig& config() const { return cfg_; }
  ChunkCodec codec() const { return codec_; }

 private:
  struct PipelineTotals {
    double makespan = 0;
    double compute_busy = 0;
    double io_busy = 0;
  };
  // Runs a layer-granular pipeline: `pre_compute` tasks start immediately on the
  // compute stream; each of `io_tasks` occupies the transmission stream in order and,
  // if its paired compute duration is positive, enqueues that compute task at IO
  // completion. Returns stream accounting.
  PipelineTotals RunPipeline(const std::vector<double>& pre_compute,
                             const std::vector<std::pair<double, double>>& io_tasks) const;

  double PipelineFillLatency() const;

  Platform platform_;
  ModelConfig cfg_;
  StorageLayout layout_;
  int64_t chunk_tokens_;
  ChunkCodec codec_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_CORE_RESTORER_H_
